package core

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"condensation/internal/stats"
)

// The on-disk condensation format: a fixed header followed by
// length-prefixed group encodings. This is the set H of the paper — the
// only state a condensation server needs to persist, and by construction
// the only state that may leave the trusted collection boundary.
const (
	condensationMagic   = 0x434e4453 // "CNDS"
	condensationVersion = 1
)

// WriteTo serializes the condensation. It implements io.WriterTo.
func (c *Condensation) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(v uint64) error {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], v)
		m, err := bw.Write(buf[:])
		n += int64(m)
		return err
	}
	if err := write(condensationMagic); err != nil {
		return n, err
	}
	for _, v := range []uint64{
		condensationVersion,
		uint64(c.dim),
		uint64(c.k),
		uint64(c.opts.Synthesis),
		uint64(c.opts.SplitAxis),
		uint64(c.opts.Leftover),
		uint64(len(c.groups)),
	} {
		if err := write(v); err != nil {
			return n, err
		}
	}
	for i, g := range c.groups {
		data, err := g.MarshalBinary()
		if err != nil {
			return n, fmt.Errorf("core: encoding group %d: %w", i, err)
		}
		if err := write(uint64(len(data))); err != nil {
			return n, err
		}
		m, err := bw.Write(data)
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadCondensation deserializes a condensation written by WriteTo.
func ReadCondensation(r io.Reader) (*Condensation, error) {
	br := bufio.NewReader(r)
	read := func() (uint64, error) {
		var buf [8]byte
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(buf[:]), nil
	}
	magic, err := read()
	if err != nil {
		return nil, fmt.Errorf("core: reading condensation header: %w", err)
	}
	if magic != condensationMagic {
		return nil, errors.New("core: not a condensation file (bad magic)")
	}
	version, err := read()
	if err != nil {
		return nil, err
	}
	if version != condensationVersion {
		return nil, fmt.Errorf("core: unsupported condensation version %d", version)
	}
	fields := make([]uint64, 5)
	for i := range fields {
		if fields[i], err = read(); err != nil {
			return nil, err
		}
	}
	dim := int(fields[0])
	k := int(fields[1])
	opts := Options{
		Synthesis: Synthesis(fields[2]),
		SplitAxis: SplitAxis(fields[3]),
		Leftover:  Leftover(fields[4]),
	}
	if err := opts.validate(); err != nil {
		return nil, fmt.Errorf("core: condensation file: %w", err)
	}
	if dim < 1 || dim > 1<<20 {
		return nil, fmt.Errorf("core: condensation file has implausible dimension %d", dim)
	}
	if k < 1 {
		return nil, fmt.Errorf("core: condensation file has implausible k = %d", k)
	}
	count, err := read()
	if err != nil {
		return nil, err
	}
	if count > 1<<30 {
		return nil, fmt.Errorf("core: condensation file claims %d groups", count)
	}
	// The group count and sizes are untrusted: never pre-allocate from
	// them beyond a small hint, and bound each group's byte length well
	// below anything a real (Fs, Sc, n) encoding needs.
	capHint := count
	if capHint > 4096 {
		capHint = 4096
	}
	groups := make([]*stats.Group, 0, capHint)
	for i := uint64(0); i < count; i++ {
		size, err := read()
		if err != nil {
			return nil, fmt.Errorf("core: reading group %d header: %w", i, err)
		}
		if size > 1<<26 {
			return nil, fmt.Errorf("core: group %d claims %d bytes", i, size)
		}
		data := make([]byte, size)
		if _, err := io.ReadFull(br, data); err != nil {
			return nil, fmt.Errorf("core: reading group %d: %w", i, err)
		}
		var g stats.Group
		if err := g.UnmarshalBinary(data); err != nil {
			return nil, fmt.Errorf("core: decoding group %d: %w", i, err)
		}
		if g.Dim() != dim {
			return nil, fmt.Errorf("core: group %d has dimension %d, file header says %d", i, g.Dim(), dim)
		}
		groups = append(groups, &g)
	}
	return newCondensation(dim, k, opts, groups), nil
}

// Labeled-container format: per-class condensations for a classification
// data set, as produced by Anonymize. Layout: magic, version, class count,
// then per class a label and a length-prefixed condensation stream.
const (
	classSetMagic   = 0x434e4448 // "CNDH"
	classSetVersion = 1
)

// WriteClassCondensations serializes per-class condensations (keyed by
// class label; -1 marks a regression condensation).
func WriteClassCondensations(w io.Writer, byClass map[int]*Condensation) (int64, error) {
	if len(byClass) == 0 {
		return 0, errors.New("core: no condensations to write")
	}
	labels := make([]int, 0, len(byClass))
	for l := range byClass {
		labels = append(labels, l)
	}
	sort.Ints(labels)

	bw := bufio.NewWriter(w)
	var n int64
	write := func(v uint64) error {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], v)
		m, err := bw.Write(buf[:])
		n += int64(m)
		return err
	}
	for _, v := range []uint64{classSetMagic, classSetVersion, uint64(len(labels))} {
		if err := write(v); err != nil {
			return n, err
		}
	}
	for _, label := range labels {
		cond := byClass[label]
		if cond == nil {
			return n, fmt.Errorf("core: nil condensation for class %d", label)
		}
		var body bytes.Buffer
		if _, err := cond.WriteTo(&body); err != nil {
			return n, fmt.Errorf("core: encoding class %d: %w", label, err)
		}
		if err := write(uint64(int64(label))); err != nil {
			return n, err
		}
		if err := write(uint64(body.Len())); err != nil {
			return n, err
		}
		m, err := bw.Write(body.Bytes())
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadClassCondensations reads a stream written by WriteClassCondensations.
func ReadClassCondensations(r io.Reader) (map[int]*Condensation, error) {
	br := bufio.NewReader(r)
	read := func() (uint64, error) {
		var buf [8]byte
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(buf[:]), nil
	}
	magic, err := read()
	if err != nil {
		return nil, fmt.Errorf("core: reading class-set header: %w", err)
	}
	if magic != classSetMagic {
		return nil, errors.New("core: not a class-condensation file (bad magic)")
	}
	version, err := read()
	if err != nil {
		return nil, err
	}
	if version != classSetVersion {
		return nil, fmt.Errorf("core: unsupported class-set version %d", version)
	}
	count, err := read()
	if err != nil {
		return nil, err
	}
	if count > 1<<20 {
		return nil, fmt.Errorf("core: class-set claims %d classes", count)
	}
	out := make(map[int]*Condensation, count)
	for i := uint64(0); i < count; i++ {
		labelBits, err := read()
		if err != nil {
			return nil, fmt.Errorf("core: reading class %d label: %w", i, err)
		}
		label := int(int64(labelBits))
		size, err := read()
		if err != nil {
			return nil, err
		}
		if size > 1<<30 {
			return nil, fmt.Errorf("core: class %d claims %d bytes", label, size)
		}
		body := make([]byte, size)
		if _, err := io.ReadFull(br, body); err != nil {
			return nil, fmt.Errorf("core: reading class %d body: %w", label, err)
		}
		cond, err := ReadCondensation(bytes.NewReader(body))
		if err != nil {
			return nil, fmt.Errorf("core: decoding class %d: %w", label, err)
		}
		if _, dup := out[label]; dup {
			return nil, fmt.Errorf("core: duplicate class %d", label)
		}
		out[label] = cond
	}
	return out, nil
}
