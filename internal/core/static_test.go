package core

import (
	"math"
	"testing"

	"condensation/internal/mat"
	"condensation/internal/rng"
	"condensation/internal/stats"
)

// clusteredRecords returns two well-separated 2-D clusters of the given
// sizes, deterministic for a seed.
func clusteredRecords(seed uint64, nA, nB int) []mat.Vector {
	r := rng.New(seed)
	out := make([]mat.Vector, 0, nA+nB)
	for i := 0; i < nA; i++ {
		out = append(out, mat.Vector{r.NormMeanStd(0, 1), r.NormMeanStd(0, 1)})
	}
	for i := 0; i < nB; i++ {
		out = append(out, mat.Vector{r.NormMeanStd(20, 1), r.NormMeanStd(20, 1)})
	}
	return out
}

func TestStaticBasicInvariants(t *testing.T) {
	recs := clusteredRecords(1, 30, 30)
	for _, k := range []int{1, 2, 5, 7, 10} {
		cond, err := Static(recs, k, rng.New(2), Options{})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if got := cond.TotalCount(); got != len(recs) {
			t.Errorf("k=%d: TotalCount = %d, want %d", k, got, len(recs))
		}
		if got := cond.MinGroupSize(); got < k {
			t.Errorf("k=%d: MinGroupSize = %d < k", k, got)
		}
		if cond.K() != k || cond.Dim() != 2 {
			t.Errorf("k=%d: K=%d Dim=%d", k, cond.K(), cond.Dim())
		}
		if avg := cond.AverageGroupSize(); avg < float64(k) {
			t.Errorf("k=%d: AverageGroupSize = %g < k", k, avg)
		}
	}
}

func TestStaticGroupCountExact(t *testing.T) {
	// 20 records with k=5 and no leftovers: exactly 4 groups of 5.
	recs := clusteredRecords(3, 10, 10)
	cond, err := Static(recs, 5, rng.New(4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cond.NumGroups() != 4 {
		t.Fatalf("NumGroups = %d, want 4", cond.NumGroups())
	}
	for _, g := range cond.Groups() {
		if g.N() != 5 {
			t.Errorf("group size %d, want 5", g.N())
		}
	}
}

func TestStaticLeftoverNearestGroup(t *testing.T) {
	// 23 records with k=5: 4 groups plus 3 leftovers absorbed, so sizes
	// sum to 23 and every group has ≥ 5.
	recs := clusteredRecords(5, 12, 11)
	cond, err := Static(recs, 5, rng.New(6), Options{Leftover: LeftoverNearestGroup})
	if err != nil {
		t.Fatal(err)
	}
	if cond.NumGroups() != 4 {
		t.Fatalf("NumGroups = %d, want 4", cond.NumGroups())
	}
	if cond.TotalCount() != 23 {
		t.Errorf("TotalCount = %d, want 23", cond.TotalCount())
	}
	if cond.MinGroupSize() < 5 {
		t.Errorf("MinGroupSize = %d < 5", cond.MinGroupSize())
	}
}

func TestStaticLeftoverOwnGroup(t *testing.T) {
	recs := clusteredRecords(7, 12, 11)
	cond, err := Static(recs, 5, rng.New(8), Options{Leftover: LeftoverOwnGroup})
	if err != nil {
		t.Fatal(err)
	}
	if cond.NumGroups() != 5 {
		t.Fatalf("NumGroups = %d, want 5 (4 full + 1 leftover)", cond.NumGroups())
	}
	if cond.MinGroupSize() != 3 {
		t.Errorf("MinGroupSize = %d, want 3", cond.MinGroupSize())
	}
}

func TestStaticFewerRecordsThanK(t *testing.T) {
	recs := clusteredRecords(9, 3, 0)
	cond, err := Static(recs, 10, rng.New(10), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cond.NumGroups() != 1 || cond.TotalCount() != 3 {
		t.Errorf("NumGroups = %d TotalCount = %d", cond.NumGroups(), cond.TotalCount())
	}
}

func TestStaticLocality(t *testing.T) {
	// With two clusters 20σ apart and k well below the cluster size, no
	// group should straddle the clusters: every group centroid lies near
	// one cluster center, never in the middle.
	recs := clusteredRecords(11, 40, 40)
	cond, err := Static(recs, 8, rng.New(12), Options{})
	if err != nil {
		t.Fatal(err)
	}
	cents, err := cond.Centroids()
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cents {
		dA := c.Dist(mat.Vector{0, 0})
		dB := c.Dist(mat.Vector{20, 20})
		if math.Min(dA, dB) > 5 {
			t.Errorf("group %d centroid %v is between clusters (dA=%.1f dB=%.1f)", i, c, dA, dB)
		}
	}
}

func TestStaticPreservesGlobalMoments(t *testing.T) {
	// Merging all group statistics must reproduce the exact global moments
	// — condensation loses within-group detail, not totals.
	recs := clusteredRecords(13, 25, 25)
	cond, err := Static(recs, 5, rng.New(14), Options{})
	if err != nil {
		t.Fatal(err)
	}
	merged := stats.NewGroup(2)
	for _, g := range cond.Groups() {
		if err := merged.Merge(g); err != nil {
			t.Fatal(err)
		}
	}
	bulk, err := stats.FromRecords(recs)
	if err != nil {
		t.Fatal(err)
	}
	if !merged.FirstOrderSums().Equal(bulk.FirstOrderSums(), 1e-8) {
		t.Error("merged first-order sums differ from bulk")
	}
	if !merged.SecondOrderSums().Equal(bulk.SecondOrderSums(), 1e-6) {
		t.Error("merged second-order sums differ from bulk")
	}
}

func TestStaticErrors(t *testing.T) {
	recs := clusteredRecords(15, 5, 5)
	if _, err := Static(nil, 2, rng.New(1), Options{}); err == nil {
		t.Error("empty records accepted")
	}
	if _, err := Static(recs, 0, rng.New(1), Options{}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Static(recs, 2, nil, Options{}); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := Static(recs, 2, rng.New(1), Options{Synthesis: Synthesis(9)}); err == nil {
		t.Error("bad options accepted")
	}
	ragged := []mat.Vector{{1, 2}, {3}}
	if _, err := Static(ragged, 1, rng.New(1), Options{}); err == nil {
		t.Error("ragged records accepted")
	}
	nan := []mat.Vector{{1, math.NaN()}}
	if _, err := Static(nan, 1, rng.New(1), Options{}); err == nil {
		t.Error("NaN records accepted")
	}
}

func TestStaticDoesNotMutateInput(t *testing.T) {
	recs := clusteredRecords(17, 10, 10)
	orig := make([]mat.Vector, len(recs))
	for i, x := range recs {
		orig[i] = x.Clone()
	}
	if _, err := Static(recs, 3, rng.New(18), Options{}); err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if !recs[i].Equal(orig[i], 0) {
			t.Fatalf("record %d mutated", i)
		}
	}
}

func TestStaticDeterministicGivenSeed(t *testing.T) {
	recs := clusteredRecords(19, 20, 20)
	c1, err := Static(recs, 4, rng.New(20), Options{})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Static(recs, 4, rng.New(20), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c1.NumGroups() != c2.NumGroups() {
		t.Fatal("group counts differ across identical runs")
	}
	g1, g2 := c1.Groups(), c2.Groups()
	for i := range g1 {
		if g1[i].N() != g2[i].N() || !g1[i].FirstOrderSums().Equal(g2[i].FirstOrderSums(), 0) {
			t.Fatalf("group %d differs across identical runs", i)
		}
	}
}

func TestStaticK1GroupsAreSingletons(t *testing.T) {
	recs := clusteredRecords(21, 7, 0)
	cond, err := Static(recs, 1, rng.New(22), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cond.NumGroups() != len(recs) {
		t.Fatalf("NumGroups = %d, want %d", cond.NumGroups(), len(recs))
	}
	for _, g := range cond.Groups() {
		if g.N() != 1 {
			t.Errorf("k=1 group has %d records", g.N())
		}
	}
}

func TestCondensationGroupsAreCopies(t *testing.T) {
	recs := clusteredRecords(23, 6, 0)
	cond, err := Static(recs, 3, rng.New(24), Options{})
	if err != nil {
		t.Fatal(err)
	}
	gs := cond.Groups()
	if err := gs[0].Add(mat.Vector{100, 100}); err != nil {
		t.Fatal(err)
	}
	if cond.TotalCount() != 6 {
		t.Error("Groups() exposes internal state")
	}
}

func TestCondensationEmptyAccessors(t *testing.T) {
	c := newCondensation(2, 3, Options{}, nil)
	if c.AverageGroupSize() != 0 || c.MinGroupSize() != 0 || c.NumGroups() != 0 {
		t.Error("empty condensation accessors nonzero")
	}
}

func TestStaticWithMembersPartition(t *testing.T) {
	recs := clusteredRecords(25, 13, 14)
	for _, k := range []int{1, 4, 9} {
		cond, members, err := StaticWithMembers(recs, k, rng.New(26), Options{})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if len(members) != cond.NumGroups() {
			t.Fatalf("k=%d: %d member lists for %d groups", k, len(members), cond.NumGroups())
		}
		seen := make([]bool, len(recs))
		for gi, member := range members {
			if len(member) != cond.Groups()[gi].N() {
				t.Errorf("k=%d: group %d lists %d members but holds %d records",
					k, gi, len(member), cond.Groups()[gi].N())
			}
			for _, idx := range member {
				if idx < 0 || idx >= len(recs) || seen[idx] {
					t.Fatalf("k=%d: invalid or duplicated member index %d", k, idx)
				}
				seen[idx] = true
			}
		}
		for i, s := range seen {
			if !s {
				t.Fatalf("k=%d: record %d not in any group", k, i)
			}
		}
	}
}

func TestStaticWithMembersStatsMatchMembers(t *testing.T) {
	recs := clusteredRecords(27, 10, 10)
	cond, members, err := StaticWithMembers(recs, 4, rng.New(28), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for gi, member := range members {
		rebuilt := stats.NewGroup(2)
		for _, idx := range member {
			if err := rebuilt.Add(recs[idx]); err != nil {
				t.Fatal(err)
			}
		}
		g := cond.Groups()[gi]
		if !rebuilt.FirstOrderSums().Equal(g.FirstOrderSums(), 1e-9) {
			t.Errorf("group %d statistics do not match its member list", gi)
		}
	}
}
