package core

import (
	"fmt"

	"condensation/internal/kernel"
	"condensation/internal/knn"
	"condensation/internal/mat"
	"condensation/internal/telemetry"
)

// dynamicIndexCutoff is the group count at which SearchAuto stops scanning
// centroids linearly and switches to the maintained kd-index: below it the
// scan's tight loop wins, above it the index's pruned descent does. The
// true crossover depends on how correlated the data is — a few hundred
// groups when attributes are correlated (the regime the paper targets),
// higher for isotropic noise where box pruning is weakest — so the cutoff
// splits the difference; force SearchScanSort or SearchKDTree to pin a
// backend. The switch is behaviour-neutral — both routers are exact with
// the same (distance, id) tie-break — so the cutoff is purely a speed
// knob.
const dynamicIndexCutoff = 256

// centroidRouter answers "which group centroid is nearest to x" for the
// dynamic engine. Implementations must be exact and deterministic: nearest
// returns the lexicographic (squared distance, group id) minimum — the
// answer the paper's linear scan over H produces — so every router routes
// every record identically and the condensed statistics are bit-identical
// across backends. update/add keep the router in sync with the engine's
// in-place centroid cache; nearest must be safe for concurrent callers
// between mutations (AddBatch's speculation phase fans it out read-only).
type centroidRouter interface {
	// nearest returns the nearest centroid's group id and squared
	// distance. The engine never calls it with zero groups.
	nearest(x mat.Vector) (int, float64)
	// update tells the router centroid id moved (d.centroids[id] holds
	// the new position).
	update(id int)
	// add tells the router centroid id was appended.
	add(id int)
	// label names the backend for the neighbor_search telemetry series.
	label() string
}

// batchRouter is the optional bulk face of a router: nearestBatch answers
// nearest for qs[i] into ids[i]/ds[i], identical to len(qs) independent
// nearest calls. AddBatch's speculation phase uses it when available so
// the whole chunk runs through the cache-blocked block-vs-block kernel.
type batchRouter interface {
	nearestBatch(qs []mat.Vector, ids []int, ds []float64)
}

// scanRouter is the reference backend: the paper's linear scan over the
// group centroids, kept as a flat row-major arena so nearest is one
// contiguous kernel sweep (O(G·d), no pointer chasing). update and add
// mirror the engine's in-place centroid cache into the arena; both are
// only called between queries (engine mutations are sequential), so
// concurrent speculation reads never race them.
type scanRouter struct {
	d     *Dynamic
	arena []float64 // row i = d.centroids[i], kept current
}

func newScanRouter(d *Dynamic) *scanRouter {
	s := &scanRouter{d: d, arena: make([]float64, 0, len(d.centroids)*d.dim)}
	for _, c := range d.centroids {
		s.arena = append(s.arena, c...)
	}
	return s
}

func (s *scanRouter) nearest(x mat.Vector) (int, float64) {
	return kernel.ArgminFlat(x, s.arena)
}

func (s *scanRouter) nearestBatch(qs []mat.Vector, ids []int, ds []float64) {
	kernel.ArgminBatch(ids, ds, qs, s.arena, s.d.dim)
}

func (s *scanRouter) update(id int) {
	copy(s.arena[id*s.d.dim:(id+1)*s.d.dim], s.d.centroids[id])
}

func (s *scanRouter) add(id int) {
	s.arena = append(s.arena, s.d.centroids[id]...)
}

func (*scanRouter) label() string { return "centroid-scan" }

// kdRouter answers queries from a knn.CentroidIndex: a kd-tree over a
// centroid snapshot plus a linear "drifted since snapshot" list, rebuilt
// when the list outgrows its threshold. Exactness and the (distance, id)
// tie-break are the index's contract, proven against the scan by
// TestCentroidIndexMatchesScan and TestAddBatchEquivalence.
type kdRouter struct {
	d   *Dynamic
	idx *knn.CentroidIndex
}

func newKDRouter(d *Dynamic) *kdRouter {
	idx, err := knn.NewCentroidIndex(d.dim, d.centroids)
	if err != nil {
		// Unreachable: the engine validated every centroid's dimension.
		panic(fmt.Sprintf("core: building centroid index: %v", err))
	}
	return &kdRouter{d: d, idx: idx}
}

func (k *kdRouter) nearest(x mat.Vector) (int, float64) { return k.idx.Nearest(x) }

func (k *kdRouter) update(id int) {
	if err := k.idx.Update(id, k.d.centroids[id]); err != nil {
		// Unreachable: ids are dense and dimensions fixed.
		panic(fmt.Sprintf("core: centroid index update: %v", err))
	}
}

func (k *kdRouter) add(id int) {
	if _, err := k.idx.Add(k.d.centroids[id]); err != nil {
		panic(fmt.Sprintf("core: centroid index add: %v", err))
	}
}

func (*kdRouter) label() string { return "centroid-kdtree" }

// initRouter (re)builds the router for the configured backend and the
// current group count. SearchScanSort and SearchQuickselect both map to
// the scan — centroid routing has nothing to sort or select — and
// SearchAuto starts scanning, promoting to the kd-index once the group
// count reaches dynamicIndexCutoff (maybePromote).
func (d *Dynamic) initRouter() {
	switch {
	case d.search.Precision == Float32:
		// The float32 index keeps the arena-sweep shape at half the
		// memory traffic; the kd promotion is skipped so the pruning
		// sweep stays a single contiguous pass.
		d.router = newF32Router(d)
	case d.search.Search == SearchKDTree,
		d.search.Search == SearchAuto && len(d.groups) >= dynamicIndexCutoff:
		d.router = newKDRouter(d)
	default:
		d.router = newScanRouter(d)
	}
	d.met.withSearchBackend(d.tel, d.router.label(), d.telLabels...)
	if d.jr != nil {
		d.jr.Record(telemetry.JournalEvent{
			Type:       telemetry.EventIndexRebuild,
			Shard:      d.shardIndex,
			Generation: d.lastMut,
			Detail:     fmt.Sprintf("router rebuilt as %s over %d centroids", d.router.label(), len(d.centroids)),
		})
	}
}

// maybePromote upgrades an auto-configured scan router to the kd-index
// once the group count crosses the cutoff. Called after every group
// append; both routers are exact, so promotion never changes routing.
// The float32 router is pinned: it never promotes.
func (d *Dynamic) maybePromote() {
	if d.search.Search != SearchAuto || len(d.groups) < dynamicIndexCutoff {
		return
	}
	if _, isScan := d.router.(*scanRouter); isScan {
		d.router = newKDRouter(d)
		d.met.withSearchBackend(d.tel, d.router.label(), d.telLabels...)
		if d.jr != nil {
			d.jr.Record(telemetry.JournalEvent{
				Type:       telemetry.EventIndexRebuild,
				Shard:      d.shardIndex,
				Generation: d.lastMut,
				Detail:     fmt.Sprintf("auto-promoted scan to %s at %d groups", d.router.label(), len(d.groups)),
			})
		}
	}
}

// SetNeighborSearch selects the nearest-centroid routing backend. The
// scan and quickselect names map to the reference linear scan (routing
// has no sort to skip); SearchKDTree forces the maintained centroid
// index; SearchAuto (the default) scans while the group count is small
// and promotes to the index at dynamicIndexCutoff groups. All backends
// route identically — TestAddBatchEquivalence proves bit-identical
// condensations — so this is purely a throughput knob.
func (d *Dynamic) SetNeighborSearch(s NeighborSearch) error {
	if err := s.validate(); err != nil {
		return err
	}
	d.search.Search = s
	d.initRouter()
	return nil
}

// SetParallelism bounds the worker goroutines of AddBatch's speculative
// routing phase; values < 1 (the default) mean runtime.NumCPU(). The
// result is identical at every setting.
func (d *Dynamic) SetParallelism(p int) { d.search.Parallelism = p }

// SetIndexPrecision selects the routing index arithmetic (default
// Float64). Float32 halves the pruning sweep's memory traffic while the
// final routing decision is still taken in float64, so the condensed
// statistics are bit-identical under either setting
// (TestFloat32RoutingEquivalence).
func (d *Dynamic) SetIndexPrecision(p IndexPrecision) error {
	if err := p.validate(); err != nil {
		return err
	}
	d.search.Precision = p
	d.initRouter()
	return nil
}

// setSearch installs the facade's search configuration.
func (d *Dynamic) setSearch(cfg searchConfig) {
	d.search = cfg
	d.initRouter()
}
