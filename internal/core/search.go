package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"condensation/internal/mat"
)

// NeighborSearch selects how the static construction finds the k−1 nearest
// not-yet-grouped records for each sampled seed. All backends are exact:
// with distinct pairwise distances they form identical groups; ties are
// broken by ascending record index in every backend except SearchScanSort,
// whose tie order is whatever the sort happens to produce.
type NeighborSearch int

const (
	// SearchAuto picks automatically: the quickselect scan, with the
	// distance sweep parallelized for large remaining sets. This is the
	// default and the fastest portable choice.
	SearchAuto NeighborSearch = iota
	// SearchScanSort is the original reference implementation: a full
	// distance scan followed by a full sort per group, O(n log n) per group
	// (O(n² log n) overall). Kept for cross-checking the fast paths.
	SearchScanSort
	// SearchQuickselect scans distances but partially selects the k
	// smallest instead of sorting all of them, O(n) expected per group.
	SearchQuickselect
	// SearchKDTree answers each group's neighbour query from a KD-tree
	// with tombstone deletion and periodic rebuild — ~O(log n) expected
	// per query in low dimension, at the cost of tree maintenance.
	SearchKDTree
)

// String returns the search-backend name.
func (s NeighborSearch) String() string {
	switch s {
	case SearchAuto:
		return "auto"
	case SearchScanSort:
		return "scan-sort"
	case SearchQuickselect:
		return "quickselect"
	case SearchKDTree:
		return "kdtree"
	default:
		return fmt.Sprintf("NeighborSearch(%d)", int(s))
	}
}

// ParseNeighborSearch converts a backend name (as printed by String) back
// to the enum, for command-line flags.
func ParseNeighborSearch(name string) (NeighborSearch, error) {
	switch name {
	case "auto":
		return SearchAuto, nil
	case "scan-sort":
		return SearchScanSort, nil
	case "quickselect":
		return SearchQuickselect, nil
	case "kdtree":
		return SearchKDTree, nil
	default:
		return 0, fmt.Errorf("core: unknown neighbour search %q", name)
	}
}

func (s NeighborSearch) validate() error {
	switch s {
	case SearchAuto, SearchScanSort, SearchQuickselect, SearchKDTree:
		return nil
	default:
		return fmt.Errorf("core: unknown neighbour search %d", int(s))
	}
}

// searchConfig carries the performance knobs of the static construction.
// They deliberately live outside Options: they never change the condensed
// statistics (up to distance ties), only how fast they are computed, so
// they are not part of the persisted condensation state.
type searchConfig struct {
	// Search selects the neighbour-search backend (default SearchAuto).
	Search NeighborSearch
	// Parallelism bounds the worker goroutines of the distance sweep;
	// values < 1 mean runtime.NumCPU().
	Parallelism int
}

func (c searchConfig) validate() error {
	return c.Search.validate()
}

// workers resolves the effective worker count.
func (c searchConfig) workers() int {
	if c.Parallelism < 1 {
		return runtime.NumCPU()
	}
	return c.Parallelism
}

// parallelSweepCutoff is the remaining-set size below which the distance
// sweep stays single-threaded: under ~8k distances the goroutine fan-out
// costs more than it saves.
const parallelSweepCutoff = 8192

// sweepDistances fills dist[i] with the squared distance from seed to
// records[alive[i]], chunked across at most `workers` goroutines when the
// sweep is large enough to amortize the fan-out. Each worker writes a
// disjoint range, so the result is identical to the serial sweep.
func sweepDistances(dist []float64, seed mat.Vector, records []mat.Vector, alive []int, workers int) {
	n := len(alive)
	if workers <= 1 || n < parallelSweepCutoff {
		for i, idx := range alive {
			dist[i] = seed.DistSq(records[idx])
		}
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				dist[i] = seed.DistSq(records[alive[i]])
			}
		}(lo, hi)
	}
	wg.Wait()
}

// selectNearest arranges order so that its first k entries are the k
// positions with the smallest (dist, alive index) keys, in ascending
// order. order must hold a permutation of [0, len(dist)) on entry.
//
// It quickselects with deterministic median-of-three pivots — expected
// O(n) with no randomness drawn, so it never perturbs the caller's rng
// stream — then sorts only the selected k entries.
func selectNearest(order []int, dist []float64, alive []int, k int) {
	if k < len(order) {
		quickselect(order, dist, alive, k)
	}
	top := order[:k]
	sort.Slice(top, func(a, b int) bool {
		return lessByDist(dist, alive, top[a], top[b])
	})
}

// lessByDist orders positions by squared distance, breaking ties by the
// record index so every backend agrees on a deterministic order.
func lessByDist(dist []float64, alive []int, a, b int) bool {
	if dist[a] != dist[b] {
		return dist[a] < dist[b]
	}
	return alive[a] < alive[b]
}

// quickselect partitions order so order[:k] holds the k smallest entries
// (in arbitrary order) under lessByDist.
func quickselect(order []int, dist []float64, alive []int, k int) {
	lo, hi := 0, len(order)-1
	for lo < hi {
		p := partition(order, dist, alive, lo, hi)
		switch {
		case p == k-1:
			return
		case p < k-1:
			lo = p + 1
		default:
			hi = p - 1
		}
	}
}

// partition performs a Lomuto partition of order[lo..hi] around a
// median-of-three pivot and returns the pivot's final position.
func partition(order []int, dist []float64, alive []int, lo, hi int) int {
	mid := lo + (hi-lo)/2
	// Sort (lo, mid, hi) so the median lands at mid, then stash it at hi.
	if lessByDist(dist, alive, order[mid], order[lo]) {
		order[lo], order[mid] = order[mid], order[lo]
	}
	if lessByDist(dist, alive, order[hi], order[lo]) {
		order[lo], order[hi] = order[hi], order[lo]
	}
	if lessByDist(dist, alive, order[hi], order[mid]) {
		order[mid], order[hi] = order[hi], order[mid]
	}
	order[mid], order[hi] = order[hi], order[mid]
	pivot := order[hi]
	i := lo
	for j := lo; j < hi; j++ {
		if lessByDist(dist, alive, order[j], pivot) {
			order[i], order[j] = order[j], order[i]
			i++
		}
	}
	order[i], order[hi] = order[hi], order[i]
	return i
}
