package core

import (
	"fmt"
	"runtime"
	"sync"

	"condensation/internal/kernel"
)

// NeighborSearch selects how the static construction finds the k−1 nearest
// not-yet-grouped records for each sampled seed. All backends are exact:
// with distinct pairwise distances they form identical groups; ties are
// broken by ascending record index in every backend except SearchScanSort,
// whose tie order is whatever the sort happens to produce.
type NeighborSearch int

const (
	// SearchAuto picks automatically: the quickselect scan, with the
	// distance sweep parallelized for large remaining sets. This is the
	// default and the fastest portable choice.
	SearchAuto NeighborSearch = iota
	// SearchScanSort is the original reference implementation: a full
	// distance scan followed by a full sort per group, O(n log n) per group
	// (O(n² log n) overall). Kept for cross-checking the fast paths.
	SearchScanSort
	// SearchQuickselect scans distances but partially selects the k
	// smallest instead of sorting all of them, O(n) expected per group.
	SearchQuickselect
	// SearchKDTree answers each group's neighbour query from a KD-tree
	// with tombstone deletion and periodic rebuild — ~O(log n) expected
	// per query in low dimension, at the cost of tree maintenance.
	SearchKDTree
)

// String returns the search-backend name.
func (s NeighborSearch) String() string {
	switch s {
	case SearchAuto:
		return "auto"
	case SearchScanSort:
		return "scan-sort"
	case SearchQuickselect:
		return "quickselect"
	case SearchKDTree:
		return "kdtree"
	default:
		return fmt.Sprintf("NeighborSearch(%d)", int(s))
	}
}

// ParseNeighborSearch converts a backend name (as printed by String) back
// to the enum, for command-line flags.
func ParseNeighborSearch(name string) (NeighborSearch, error) {
	switch name {
	case "auto":
		return SearchAuto, nil
	case "scan-sort":
		return SearchScanSort, nil
	case "quickselect":
		return SearchQuickselect, nil
	case "kdtree":
		return SearchKDTree, nil
	default:
		return 0, fmt.Errorf("core: unknown neighbour search %q", name)
	}
}

func (s NeighborSearch) validate() error {
	switch s {
	case SearchAuto, SearchScanSort, SearchQuickselect, SearchKDTree:
		return nil
	default:
		return fmt.Errorf("core: unknown neighbour search %d", int(s))
	}
}

// searchConfig carries the performance knobs of the static construction.
// They deliberately live outside Options: they never change the condensed
// statistics (up to distance ties), only how fast they are computed, so
// they are not part of the persisted condensation state.
type searchConfig struct {
	// Search selects the neighbour-search backend (default SearchAuto).
	Search NeighborSearch
	// Parallelism bounds the worker goroutines of the distance sweep;
	// values < 1 mean runtime.NumCPU().
	Parallelism int
	// Precision selects the arithmetic of the dynamic routing index
	// (default Float64, the exact reference; Float32 prunes in single
	// precision and re-verifies candidates in float64 — see precision.go).
	Precision IndexPrecision
}

func (c searchConfig) validate() error {
	if err := c.Search.validate(); err != nil {
		return err
	}
	return c.Precision.validate()
}

// workers resolves the effective worker count.
func (c searchConfig) workers() int {
	if c.Parallelism < 1 {
		return runtime.NumCPU()
	}
	return c.Parallelism
}

// parallelSweepCutoff is the remaining-set size below which the distance
// sweep stays single-threaded: under ~8k distances the goroutine fan-out
// costs more than it saves.
const parallelSweepCutoff = 8192

// sweepArena fills dist[i] with the squared distance from seed to row i
// of the flat coordinate arena, chunked across at most `workers`
// goroutines when the sweep is large enough to amortize the fan-out. Each
// worker writes a disjoint range, so the result is identical to the
// serial kernel sweep — which is itself bit-identical to the gathered
// scalar loop it replaced (kernel package contract).
func sweepArena(dist []float64, seed []float64, arena []float64, dim, workers int) {
	n := len(dist)
	if workers <= 1 || n < parallelSweepCutoff {
		kernel.Sweep(dist, seed, arena[:n*dim])
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			kernel.Sweep(dist[lo:hi], seed, arena[lo*dim:hi*dim])
		}(lo, hi)
	}
	wg.Wait()
}

// selectNearest arranges order so that its first k entries are the k
// positions with the smallest (dist, alive index) keys, in ascending
// order. order must hold a permutation of [0, len(dist)) on entry.
//
// The reduction is kernel.TopK: deterministic median-of-three quickselect
// (expected O(n), no randomness drawn, so it never perturbs the caller's
// rng stream) followed by a sort of only the selected k entries, under
// the lexicographic (distance, record index) order every backend shares.
func selectNearest(order []int, dist []float64, alive []int, k int) {
	kernel.TopK(order, dist, alive, k)
}
