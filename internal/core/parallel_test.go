package core

import (
	"reflect"
	"testing"

	"condensation/internal/rng"
)

// TestSynthesizeParallelEquivalence proves the synthesis determinism
// guarantee: because every group draws from its own pre-derived stream,
// the synthesized records are bit-identical for every worker count.
func TestSynthesizeParallelEquivalence(t *testing.T) {
	recs := correlatedRecords(30, 120)
	cond, err := Static(recs, 8, rng.New(31), Options{})
	if err != nil {
		t.Fatal(err)
	}
	cond.SetParallelism(1)
	seq, err := cond.SynthesizeGrouped(rng.New(32))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{0, 2, 8} {
		cond.SetParallelism(p)
		got, err := cond.SynthesizeGrouped(rng.New(32))
		if err != nil {
			t.Fatalf("parallelism %d: %v", p, err)
		}
		if !reflect.DeepEqual(seq, got) {
			t.Errorf("parallelism %d: synthesized groups differ from sequential", p)
		}
	}

	// The flat view concatenates the same per-group output.
	cond.SetParallelism(8)
	flat, err := cond.Synthesize(rng.New(32))
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for gi, g := range seq {
		for pi, want := range g {
			if !flat[i].Equal(want, 0) {
				t.Fatalf("flat record %d differs from group %d point %d", i, gi, pi)
			}
			i++
		}
	}
	if i != len(flat) {
		t.Fatalf("flat synthesis has %d records, grouped has %d", len(flat), i)
	}
}

// TestSynthesizeParallelGaussian repeats the equivalence check for the
// Gaussian ablation mode, whose draw pattern differs per point.
func TestSynthesizeParallelGaussian(t *testing.T) {
	recs := correlatedRecords(33, 90)
	cond, err := Static(recs, 6, rng.New(34), Options{Synthesis: SynthesisGaussian})
	if err != nil {
		t.Fatal(err)
	}
	cond.SetParallelism(1)
	seq, err := cond.Synthesize(rng.New(35))
	if err != nil {
		t.Fatal(err)
	}
	cond.SetParallelism(8)
	par, err := cond.Synthesize(rng.New(35))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Error("Gaussian synthesis differs between 1 and 8 workers")
	}
}

// TestAnonymizeParallelEquivalence checks the knob end to end: a full
// Anonymize run (condense + synthesize per class) produces the identical
// data set at every parallelism, and the facade's WithParallelism option
// reaches synthesis too.
func TestAnonymizeParallelEquivalence(t *testing.T) {
	ds := toyClassification(36, 50)
	run := func(p int) ([][]float64, error) {
		anon, _, err := Anonymize(ds, AnonymizeConfig{K: 5, Parallelism: p}, rng.New(37))
		if err != nil {
			return nil, err
		}
		out := make([][]float64, len(anon.X))
		for i, x := range anon.X {
			out[i] = x
		}
		return out, nil
	}
	seq, err := run(1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := run(8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Error("Anonymize output differs between 1 and 8 workers")
	}

	for _, p := range []int{1, 8} {
		c, err := NewCondenser(5, WithSeed(37), WithParallelism(p), WithRandomSource(rng.New(37)))
		if err != nil {
			t.Fatal(err)
		}
		anon, _, err := c.Anonymize(ds)
		if err != nil {
			t.Fatal(err)
		}
		got := make([][]float64, len(anon.X))
		for i, x := range anon.X {
			got[i] = x
		}
		if !reflect.DeepEqual(seq, got) {
			t.Errorf("Condenser.Anonymize with parallelism %d differs from sequential Anonymize", p)
		}
	}
}

// TestMergePropagatesParallelism pins that merged condensations keep the
// first input's synthesis parallelism.
func TestMergePropagatesParallelism(t *testing.T) {
	recs := correlatedRecords(38, 40)
	a, err := Static(recs[:20], 4, rng.New(39), Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Static(recs[20:], 4, rng.New(40), Options{})
	if err != nil {
		t.Fatal(err)
	}
	a.SetParallelism(8)
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.par != 8 {
		t.Errorf("merged parallelism = %d, want 8", m.par)
	}
}
