package core

import (
	"errors"
	"fmt"
	"math"

	"condensation/internal/mat"
	"condensation/internal/rng"
	"condensation/internal/stats"
)

// SplitGroup implements SplitGroupStatistics (Figure 3 of the paper): it
// splits the statistics of a group M holding 2k records into two child
// groups M1, M2 of k records each, without access to any raw records.
//
// Under the paper's locally-uniform model, the group is treated as
// uniformly distributed along each eigenvector of its covariance matrix
// C(M) = P Λ Pᵀ. Along the split eigenvector e (eigenvalue λ) the uniform
// range is a = √(12λ); cutting that range at its midpoint yields two
// uniform halves whose means sit at ±a/4 from the parent centroid and
// whose variance is λ/4 (Figure 4). Hence:
//
//	centroid(M1,2) = Y(M) ∓ (√(12λ)/4)·e
//	λ(M1,2)        = λ/4 along e; all other eigenpairs unchanged
//	C(M1) = C(M2)  = P Λ' Pᵀ
//	Sc_ij(Mi)      = k·C_ij(Mi) + Fs_i(Mi)·Fs_j(Mi)/k     (Equation 3)
//
// axis selects the split eigenvector: the principal one (the paper's
// choice — the most elongated direction, minimizing child variance) or a
// uniformly random one (ablation). The random source is only consulted for
// SplitRandom.
func SplitGroup(m *stats.Group, k int, axis SplitAxis, r *rng.Source) (m1, m2 *stats.Group, err error) {
	return splitGroupWith(m, k, axis, r, nil)
}

// splitGroupWith is SplitGroup drawing the eigensolver workspaces from s
// (nil allocates locally): the dynamic engine passes its per-engine scratch
// so the steady stream of split eigensolves reuses one set of buffers.
func splitGroupWith(m *stats.Group, k int, axis SplitAxis, r *rng.Source, s *mat.EigenScratch) (m1, m2 *stats.Group, err error) {
	if k < 1 {
		return nil, nil, fmt.Errorf("core: split with k = %d", k)
	}
	if m.N() != 2*k {
		return nil, nil, fmt.Errorf("core: split of group with %d records, want exactly 2k = %d", m.N(), 2*k)
	}
	eig, err := m.EigenWith(s)
	if err != nil {
		return nil, nil, err
	}
	centroid, err := m.Mean()
	if err != nil {
		return nil, nil, err
	}

	splitIdx := 0 // eigenvalues are sorted descending, so 0 is principal
	switch axis {
	case SplitPrincipal:
	case SplitRandom:
		if r == nil {
			return nil, nil, errors.New("core: SplitRandom requires a random source")
		}
		splitIdx = r.IntN(eig.Dim())
	default:
		return nil, nil, fmt.Errorf("core: unknown split axis %d", int(axis))
	}

	lambda := eig.Values[splitIdx]
	e := eig.Vector(splitIdx)
	offset := math.Sqrt(12*lambda) / 4

	// Child covariance: divide the split eigenvalue by 4, keep the rest.
	childValues := eig.Values.Clone()
	childValues[splitIdx] = lambda / 4
	childCov := mat.Eigen{Values: childValues, Vectors: eig.Vectors}.Reconstruct().Symmetrize()

	build := func(sign float64) (*stats.Group, error) {
		c := centroid.Clone().AddScaled(sign*offset, e)
		fs := c.Scale(float64(k)) // Fs = k · centroid
		kf := float64(k)
		sc := mat.New(m.Dim(), m.Dim())
		for i := 0; i < m.Dim(); i++ {
			for j := 0; j < m.Dim(); j++ {
				// Equation 3: Sc_ij = k·C_ij + Fs_i·Fs_j/k.
				sc.Set(i, j, kf*childCov.At(i, j)+fs[i]*fs[j]/kf)
			}
		}
		return stats.FromMoments(k, fs, sc)
	}

	if m1, err = build(-1); err != nil {
		return nil, nil, fmt.Errorf("core: building first child: %w", err)
	}
	if m2, err = build(+1); err != nil {
		return nil, nil, fmt.Errorf("core: building second child: %w", err)
	}
	return m1, m2, nil
}
