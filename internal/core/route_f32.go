package core

import (
	"math"
	"sync"

	"condensation/internal/kernel"
	"condensation/internal/mat"
)

// f32Router is the Float32 index backend: a shadow copy of the centroid
// arena in float32. nearest runs in three steps:
//
//  1. a float32 min-sweep over the shadow arena finds min32, the smallest
//     single-precision squared distance;
//  2. every row whose float32 distance is within min32 + 2·margin is
//     collected, where margin = kernel.MarginF32(dim, maxAbs) bounds
//     |d32 − d64| over the arena (maxAbs tracks the largest coordinate
//     magnitude ever stored or queried, so the bound is monotone and
//     never understates past rows);
//  3. the candidates are re-verified with exact float64 distances against
//     the engine's live centroids, in ascending id order, which restores
//     the exact lexicographic (distance, id) minimum.
//
// Step 2's set provably contains every id achieving the exact minimum:
// for such an id, d32 ≤ d64min + margin ≤ (min32 + margin) + margin. So
// the routing decision — and therefore every group moment, split, and
// synthesis draw downstream — is bit-identical to the float64 scan.
//
// Mutations (update/add) only happen between queries under the engine's
// sequential write discipline; concurrent speculation calls nearest
// read-only with per-call scratch from a sync.Pool.
type f32Router struct {
	d      *Dynamic
	arena  []float32
	maxAbs float64 // running max |coordinate| over arena rows and queries
	pool   sync.Pool
}

// f32Scratch is the per-nearest-call working set: the converted query and
// the candidate list.
type f32Scratch struct {
	q32  []float32
	cand []int
}

func newF32Router(d *Dynamic) *f32Router {
	r := &f32Router{d: d, arena: make([]float32, 0, len(d.centroids)*d.dim)}
	r.pool.New = func() any {
		return &f32Scratch{q32: make([]float32, d.dim), cand: make([]int, 0, 64)}
	}
	for _, c := range d.centroids {
		r.appendRow(c)
	}
	return r
}

func (r *f32Router) appendRow(v mat.Vector) {
	for _, x := range v {
		if a := math.Abs(x); a > r.maxAbs {
			r.maxAbs = a
		}
		r.arena = append(r.arena, float32(x))
	}
}

func (r *f32Router) nearest(x mat.Vector) (int, float64) {
	s := r.pool.Get().(*f32Scratch)
	best, bestD := r.nearestWith(x, s)
	r.pool.Put(s)
	return best, bestD
}

// nearestBatch answers a block of queries with one pooled scratch instead
// of a pool round-trip per record; each answer is exactly nearest's.
func (r *f32Router) nearestBatch(qs []mat.Vector, ids []int, ds []float64) {
	s := r.pool.Get().(*f32Scratch)
	for i, x := range qs {
		ids[i], ds[i] = r.nearestWith(x, s)
	}
	r.pool.Put(s)
}

func (r *f32Router) nearestWith(x mat.Vector, s *f32Scratch) (int, float64) {
	q32 := s.q32[:r.d.dim]
	maxAbs := r.maxAbs
	for j, v := range x {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
		q32[j] = float32(v)
	}
	dim := float64(r.d.dim)
	margin := kernel.MarginF32(r.d.dim, maxAbs)
	// One fused sweep: exact f32 minimum plus a candidate superset
	// collected against the running minimum + 2·margin (see
	// kernel.MinCollectF32 — the superset still contains every row that
	// can achieve the exact f64 minimum; re-verification drops the rest).
	min32, cand := kernel.MinCollectF32(q32, r.arena, 2*margin, s.cand[:0])
	s.cand = cand
	best, bestD := -1, math.Inf(1)
	if math.IsInf(float64(min32), 1) || maxAbs*maxAbs*dim*64 > math.MaxFloat32 {
		// Magnitudes near the float32 overflow boundary void the margin
		// bound (a squared distance may round to +Inf), so fall back to
		// the exact scan. Unreachable for any sane data scale.
		best, bestD = kernel.ArgminIndexed(x, r.d.centroids, allIDs(len(r.d.centroids), &s.cand), best, bestD)
	} else {
		// Exact float64 re-verification, candidates in ascending id order.
		best, bestD = kernel.ArgminIndexed(x, r.d.centroids, cand, best, bestD)
	}
	return best, bestD
}

// allIDs fills *buf with 0..n-1 for the overflow fallback's full scan.
func allIDs(n int, buf *[]int) []int {
	ids := (*buf)[:0]
	for i := 0; i < n; i++ {
		ids = append(ids, i)
	}
	*buf = ids
	return ids
}

func (r *f32Router) update(id int) {
	row := r.arena[id*r.d.dim : (id+1)*r.d.dim]
	for j, x := range r.d.centroids[id] {
		if a := math.Abs(x); a > r.maxAbs {
			r.maxAbs = a
		}
		row[j] = float32(x)
	}
}

func (r *f32Router) add(id int) { r.appendRow(r.d.centroids[id]) }

func (*f32Router) label() string { return "centroid-scan-f32" }
