package core

import (
	"context"

	"condensation/internal/mat"
	"condensation/internal/telemetry"
)

// Engine is the serving contract of a dynamic condenser: the full method
// set the HTTP server, the stream driver, and the daemon depend on. Two
// implementations exist:
//
//   - *Dynamic: one condenser (one lock domain, managed by the caller). It
//     is NOT safe for concurrent use — callers that share it across
//     goroutines must serialize access themselves (Synchronized reports
//     false so generic callers know to).
//   - *Sharded: N independent Dynamic shards behind deterministic
//     record→shard routing, each guarded by its own lock. It is safe for
//     concurrent use (Synchronized reports true), and ingestion scales
//     across cores because concurrent batches only contend per shard.
//
// Every implementation preserves the paper's invariants: groups hold
// between k and 2k−1 records in steady state, only aggregate statistics
// are retained, and the same seed (and, for Sharded, the same shard
// count) reproduces the same condensed state bit for bit.
type Engine interface {
	// Add routes one stream record to the group with the nearest centroid
	// (within the record's shard) and splits that group if it reaches 2k
	// records.
	Add(x mat.Vector) error
	// AddAll streams a batch of records through Add, in order.
	AddAll(records []mat.Vector) error
	// AddAllContext is AddAll with cancellation between records.
	AddAllContext(ctx context.Context, records []mat.Vector) error
	// AddBatch ingests a batch through the high-throughput path,
	// bit-identical to an Add loop over the same records.
	AddBatch(records []mat.Vector) error
	// AddBatchContext is AddBatch with cancellation at record boundaries.
	AddBatchContext(ctx context.Context, records []mat.Vector) error

	// Condensation snapshots the current groups as an immutable
	// Condensation (for Sharded, the per-shard group sets merged in shard
	// order — a stable, reproducible ordering).
	Condensation() *Condensation
	// K returns the indistinguishability level.
	K() int
	// Dim returns the attribute dimensionality.
	Dim() int
	// NumGroups returns the current number of groups across all shards.
	NumGroups() int
	// TotalCount returns the number of records condensed so far.
	TotalCount() int
	// Splits returns the number of group splits performed so far.
	Splits() int

	// NumShards returns the number of independent shards (1 for Dynamic).
	NumShards() int
	// Shard snapshots the groups of one shard as an immutable
	// Condensation. Shard(0) on a single-shard engine equals
	// Condensation(). It panics when i is out of range — shard indices
	// come from NumShards, not from untrusted input.
	Shard(i int) *Condensation
	// ShardCounts returns one shard's live record/group/split counts
	// without materializing its groups — cheap enough for periodic
	// scraping. Like Shard, it panics when i is out of range.
	ShardCounts(i int) (records, groups, splits int)
	// ShardGroupSizes appends one shard's live per-group record counts to
	// buf (resliced to zero length first) and returns it — a moments-only
	// size audit with no group cloning, for consumers that need the size
	// distribution but not the statistics. Like Shard, it panics when i is
	// out of range.
	ShardGroupSizes(i int, buf []int) []int

	// Generation returns the engine's mutation generation: a monotone
	// counter advanced on every state-changing apply (Add, each applied
	// record of AddBatch — splits ride along) and stable across pure
	// reads. Equal generations imply bit-identical condensed state, so the
	// value is a complete version key for read-side caches and HTTP ETags.
	// The read is one atomic load and never blocks on engine locks.
	Generation() uint64

	// Synchronized reports whether the engine performs its own locking.
	// Callers serving a non-synchronized engine to concurrent clients
	// must wrap calls in their own mutex (the server does).
	Synchronized() bool

	// GroupInfos appends every live group's lifecycle summary (stable id,
	// shard, size, birth generation, split parent, centroid drift) to buf
	// (resliced to zero length first) and returns it, in stable
	// shard-then-slot order. Pure read: on a non-synchronized engine it
	// needs the caller's read lock, like Condensation.
	GroupInfos(buf []GroupInfo) []GroupInfo
	// GroupByID returns the diagnostics detail of the live group with the
	// given stable id, or ok=false when no such group exists (retired by a
	// split, never allocated, or wrong shard bits). Pure read.
	GroupByID(id uint64) (GroupDetail, bool)
	// Explain dry-runs routing one record without ingesting it: the shard
	// it would route to, the top candidate groups in exact (distance, id)
	// order, and the absorb/split/found outcome. Strictly side-effect-free
	// — engine state, rng stream, and checkpoint bytes are bit-identical
	// whether Explain ran or not. Pure read.
	Explain(x mat.Vector, top int) (*Explanation, error)

	// SetTelemetry attaches a metrics registry (nil disables recording).
	SetTelemetry(reg *telemetry.Registry)
	// SetTracer attaches a span tracer (nil disables tracing).
	SetTracer(tr *telemetry.Tracer)
	// SetJournal attaches a group-lifecycle journal recording structured
	// events (foundings, splits with lineage, router rebuilds, speculation
	// fallbacks) stamped with shard and generation. Nil (the default)
	// disables recording at one nil check per event site; the journal is
	// observe-only, so condensed output is bit-identical either way.
	SetJournal(j *telemetry.Journal)
	// SetNeighborSearch selects the nearest-centroid routing backend.
	SetNeighborSearch(s NeighborSearch) error
	// SetParallelism bounds the worker goroutines of batch speculation;
	// values < 1 mean runtime.NumCPU().
	SetParallelism(p int)
	// SetIndexPrecision selects the routing index arithmetic (default
	// Float64; Float32 prunes in single precision and re-verifies in
	// float64, so condensed output is identical either way).
	SetIndexPrecision(p IndexPrecision) error
}

// Both engines implement the full serving contract.
var (
	_ Engine = (*Dynamic)(nil)
	_ Engine = (*Sharded)(nil)
)
