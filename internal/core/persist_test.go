package core

import (
	"bytes"
	"testing"

	"condensation/internal/rng"
)

func TestCondensationRoundTrip(t *testing.T) {
	recs := clusteredRecords(61, 20, 20)
	orig, err := Static(recs, 5, rng.New(62), Options{
		Synthesis: SynthesisGaussian,
		SplitAxis: SplitRandom,
		Leftover:  LeftoverOwnGroup,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCondensation(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dim() != orig.Dim() || got.K() != orig.K() || got.NumGroups() != orig.NumGroups() {
		t.Fatalf("round trip: dim=%d k=%d groups=%d, want dim=%d k=%d groups=%d",
			got.Dim(), got.K(), got.NumGroups(), orig.Dim(), orig.K(), orig.NumGroups())
	}
	if got.opts != orig.opts {
		t.Errorf("options %+v, want %+v", got.opts, orig.opts)
	}
	og, gg := orig.Groups(), got.Groups()
	for i := range og {
		if og[i].N() != gg[i].N() {
			t.Fatalf("group %d count %d, want %d", i, gg[i].N(), og[i].N())
		}
		if !og[i].FirstOrderSums().Equal(gg[i].FirstOrderSums(), 0) {
			t.Fatalf("group %d Fs not preserved", i)
		}
		if !og[i].SecondOrderSums().Equal(gg[i].SecondOrderSums(), 0) {
			t.Fatalf("group %d Sc not preserved", i)
		}
	}
	// Synthesis from the loaded condensation must match bit for bit.
	s1, err := orig.Synthesize(rng.New(63))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := got.Synthesize(rng.New(63))
	if err != nil {
		t.Fatal(err)
	}
	for i := range s1 {
		if !s1[i].Equal(s2[i], 0) {
			t.Fatal("synthesis differs after round trip")
		}
	}
}

func TestReadCondensationRejectsGarbage(t *testing.T) {
	if _, err := ReadCondensation(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream accepted")
	}
	if _, err := ReadCondensation(bytes.NewReader(make([]byte, 64))); err == nil {
		t.Error("zero stream accepted")
	}
	// Corrupt a valid stream's version field.
	recs := clusteredRecords(64, 6, 0)
	cond, err := Static(recs, 2, rng.New(65), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := cond.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[8] = 99 // version
	if _, err := ReadCondensation(bytes.NewReader(data)); err == nil {
		t.Error("bad version accepted")
	}
	// Truncated stream.
	buf.Reset()
	if _, err := cond.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-5]
	if _, err := ReadCondensation(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated stream accepted")
	}
}

func TestReadCondensationRejectsBadOptions(t *testing.T) {
	recs := clusteredRecords(66, 6, 0)
	cond, err := Static(recs, 2, rng.New(67), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := cond.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[32] = 200 // synthesis enum (header words: magic, version, dim, k, synthesis, ...)
	if _, err := ReadCondensation(bytes.NewReader(data)); err == nil {
		t.Error("bad synthesis option accepted")
	}
}

func TestClassCondensationsRoundTrip(t *testing.T) {
	a, err := Static(clusteredRecords(70, 10, 0), 3, rng.New(71), Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Static(clusteredRecords(72, 0, 14), 4, rng.New(73), Options{})
	if err != nil {
		t.Fatal(err)
	}
	in := map[int]*Condensation{0: a, 1: b, -1: a}
	var buf bytes.Buffer
	if _, err := WriteClassCondensations(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadClassCondensations(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("%d classes, want 3", len(out))
	}
	for label, cond := range in {
		got, ok := out[label]
		if !ok {
			t.Fatalf("class %d missing", label)
		}
		if got.TotalCount() != cond.TotalCount() || got.K() != cond.K() {
			t.Errorf("class %d: count=%d k=%d, want count=%d k=%d",
				label, got.TotalCount(), got.K(), cond.TotalCount(), cond.K())
		}
	}
}

func TestClassCondensationsErrors(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteClassCondensations(&buf, nil); err == nil {
		t.Error("empty map accepted")
	}
	if _, err := WriteClassCondensations(&buf, map[int]*Condensation{0: nil}); err == nil {
		t.Error("nil condensation accepted")
	}
	if _, err := ReadClassCondensations(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream accepted")
	}
	if _, err := ReadClassCondensations(bytes.NewReader(make([]byte, 24))); err == nil {
		t.Error("zero stream accepted")
	}
	// Valid stream, truncated body.
	a, err := Static(clusteredRecords(74, 8, 0), 2, rng.New(75), Options{})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if _, err := WriteClassCondensations(&buf, map[int]*Condensation{0: a}); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-4]
	if _, err := ReadClassCondensations(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated stream accepted")
	}
}
