package core

import (
	"bytes"
	"testing"

	"condensation/internal/rng"
)

// FuzzReadCondensation feeds arbitrary bytes to the condensation decoder;
// it must reject or produce a consistent condensation, never panic or
// over-allocate catastrophically.
func FuzzReadCondensation(f *testing.F) {
	cond, err := Static(clusteredRecords(200, 8, 8), 4, rng.New(201), Options{})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := cond.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	seed := buf.Bytes()
	f.Add(seed)
	f.Add([]byte{})
	f.Add(seed[:10])
	f.Add(bytes.Repeat([]byte{0xff}, 80))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadCondensation(bytes.NewReader(data))
		if err != nil {
			return
		}
		if got.Dim() <= 0 || got.K() < 1 {
			t.Fatalf("accepted condensation dim=%d k=%d", got.Dim(), got.K())
		}
		// Accepted input must round-trip to an equal re-encoding of itself.
		var out bytes.Buffer
		if _, err := got.WriteTo(&out); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := ReadCondensation(&out)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.NumGroups() != got.NumGroups() || again.TotalCount() != got.TotalCount() {
			t.Fatal("round trip changed group structure")
		}
	})
}
