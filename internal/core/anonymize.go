package core

import (
	"context"
	"errors"
	"fmt"

	"condensation/internal/dataset"
	"condensation/internal/mat"
	"condensation/internal/rng"
	"condensation/internal/telemetry"
)

// Mode selects between the paper's two group-construction regimes.
type Mode int

const (
	// ModeStatic condenses the entire data set at once (Figure 1).
	ModeStatic Mode = iota
	// ModeDynamic condenses an initial fraction statically and streams the
	// remaining records through dynamic group maintenance (Figure 2).
	ModeDynamic
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeStatic:
		return "static"
	case ModeDynamic:
		return "dynamic"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// AnonymizeConfig configures data-set level anonymization.
type AnonymizeConfig struct {
	// K is the indistinguishability level (minimum group size).
	K int
	// Mode selects static or dynamic condensation.
	Mode Mode
	// Options tunes synthesis, split axis, and leftover policy.
	Options Options
	// InitialFraction is the fraction of records (per class) used as the
	// dynamic mode's initial static database; the remainder is streamed.
	// Values outside (0, 1] fall back to the default 0.25. Ignored for
	// static mode.
	InitialFraction float64
	// Search selects the static neighbour-search backend (default
	// SearchAuto). It changes speed, never the condensed statistics (up to
	// distance ties).
	Search NeighborSearch
	// Parallelism bounds the static distance sweep's worker goroutines;
	// values < 1 mean runtime.NumCPU().
	Parallelism int
	// Telemetry optionally records stage timings and group counters into a
	// metrics registry. Nil disables recording; the anonymized output is
	// bit-identical either way.
	Telemetry *telemetry.Registry
	// Tracer optionally records sampled execution spans for the
	// condensation and synthesis stages. Nil disables tracing; observe-only
	// like Telemetry.
	Tracer *telemetry.Tracer
}

// ClassReport describes the condensation of one class (or of the whole
// data set, for regression).
type ClassReport struct {
	// Label is the class index, or -1 for regression.
	Label int
	// Records is the number of original records condensed.
	Records int
	// Groups is the number of condensed groups produced.
	Groups int
	// AvgGroupSize is Records/Groups.
	AvgGroupSize float64
	// MinGroupSize is the smallest group, the achieved
	// indistinguishability level.
	MinGroupSize int
	// Cond is the class's condensation — the paper's H set, the only
	// state that needs persisting to re-synthesize later.
	Cond *Condensation
}

// Report aggregates the outcome of an Anonymize call.
type Report struct {
	// Classes holds one entry per condensed class.
	Classes []ClassReport
}

// TotalGroups returns the number of groups across all classes.
func (r *Report) TotalGroups() int {
	var n int
	for _, c := range r.Classes {
		n += c.Groups
	}
	return n
}

// TotalRecords returns the number of records across all classes.
func (r *Report) TotalRecords() int {
	var n int
	for _, c := range r.Classes {
		n += c.Records
	}
	return n
}

// AvgGroupSize returns the overall average group size — the x-coordinate
// used by every figure in the paper's evaluation.
func (r *Report) AvgGroupSize() float64 {
	if g := r.TotalGroups(); g > 0 {
		return float64(r.TotalRecords()) / float64(g)
	}
	return 0
}

// Anonymize produces a privacy-preserving replacement for ds.
//
// For classification data sets each class is condensed separately
// (Section 3.1 of the paper: "separate sets of data were generated from
// each of the different classes") and the synthesized records inherit
// their group's class, so any unmodified classifier can consume the
// output.
//
// For regression data sets the target is appended as an extra attribute
// and condensed jointly with the features, so the synthesized data
// preserves feature–target correlations; the extra attribute is split
// back off into the synthesized targets.
//
// Deprecated: use the Condenser facade — NewCondenser(k, WithSeed(s),
// WithMode(m), ...).Anonymize(ds).
func Anonymize(ds *dataset.Dataset, cfg AnonymizeConfig, r *rng.Source) (*dataset.Dataset, *Report, error) {
	if r == nil {
		return nil, nil, errors.New("core: nil random source")
	}
	if err := ds.Validate(); err != nil {
		return nil, nil, fmt.Errorf("core: input data set: %w", err)
	}
	if ds.Len() == 0 {
		return nil, nil, errors.New("core: empty data set")
	}
	if cfg.K < 1 {
		return nil, nil, fmt.Errorf("core: indistinguishability level k = %d, must be ≥ 1", cfg.K)
	}
	switch ds.Task {
	case dataset.Classification:
		return anonymizeClassification(ds, cfg, r)
	case dataset.Regression:
		return anonymizeRegression(ds, cfg, r)
	default:
		return nil, nil, fmt.Errorf("core: unsupported task %v", ds.Task)
	}
}

func anonymizeClassification(ds *dataset.Dataset, cfg AnonymizeConfig, r *rng.Source) (*dataset.Dataset, *Report, error) {
	out := &dataset.Dataset{
		Name:       ds.Name + "-anonymized",
		Attrs:      append([]string(nil), ds.Attrs...),
		ClassNames: append([]string(nil), ds.ClassNames...),
		Task:       dataset.Classification,
	}
	report := &Report{}
	byClass := ds.ByClass()
	for label := 0; label < ds.NumClasses(); label++ {
		idx := byClass[label]
		if len(idx) == 0 {
			continue
		}
		recs := make([]mat.Vector, len(idx))
		for i, ri := range idx {
			recs[i] = ds.X[ri]
		}
		cond, err := condenseRecords(recs, cfg, r.Split())
		if err != nil {
			return nil, nil, fmt.Errorf("core: class %d: %w", label, err)
		}
		synth, err := cond.Synthesize(r.Split())
		if err != nil {
			return nil, nil, fmt.Errorf("core: synthesizing class %d: %w", label, err)
		}
		for _, x := range synth {
			if err := out.Append(x, label, 0); err != nil {
				return nil, nil, err
			}
		}
		report.Classes = append(report.Classes, classReport(label, len(recs), cond))
	}
	return out, report, nil
}

func anonymizeRegression(ds *dataset.Dataset, cfg AnonymizeConfig, r *rng.Source) (*dataset.Dataset, *Report, error) {
	d := ds.Dim()
	recs := make([]mat.Vector, ds.Len())
	for i, x := range ds.X {
		joint := make(mat.Vector, d+1)
		copy(joint, x)
		joint[d] = ds.Targets[i]
		recs[i] = joint
	}
	cond, err := condenseRecords(recs, cfg, r.Split())
	if err != nil {
		return nil, nil, err
	}
	synth, err := cond.Synthesize(r.Split())
	if err != nil {
		return nil, nil, err
	}
	out := &dataset.Dataset{
		Name:  ds.Name + "-anonymized",
		Attrs: append([]string(nil), ds.Attrs...),
		Task:  dataset.Regression,
	}
	for _, joint := range synth {
		x := joint[:d].Clone()
		if err := out.Append(x, 0, joint[d]); err != nil {
			return nil, nil, err
		}
	}
	report := &Report{Classes: []ClassReport{classReport(-1, len(recs), cond)}}
	return out, report, nil
}

// condenseRecords runs the configured construction regime on one record
// set. The returned condensation inherits cfg.Parallelism for its
// synthesis fan-out.
func condenseRecords(recs []mat.Vector, cfg AnonymizeConfig, r *rng.Source) (*Condensation, error) {
	search := searchConfig{Search: cfg.Search, Parallelism: cfg.Parallelism}
	switch cfg.Mode {
	case ModeStatic:
		cond, _, err := staticCondense(context.Background(), recs, cfg.K, r, cfg.Options, search, cfg.Telemetry, cfg.Tracer)
		if cond != nil {
			cond.SetTracer(cfg.Tracer)
		}
		return cond, err
	case ModeDynamic:
		frac := cfg.InitialFraction
		if frac <= 0 || frac > 1 {
			frac = 0.25
		}
		initial := int(frac * float64(len(recs)))
		// The initial database must support at least one full group; the
		// stream needs at least the records not in the initial database.
		if initial < cfg.K {
			initial = cfg.K
		}
		if initial > len(recs) {
			initial = len(recs)
		}
		base, _, err := staticCondense(context.Background(), recs[:initial], cfg.K, r, cfg.Options, search, cfg.Telemetry, cfg.Tracer)
		if err != nil {
			return nil, err
		}
		dyn, err := NewDynamic(base, r)
		if err != nil {
			return nil, err
		}
		dyn.SetTelemetry(cfg.Telemetry)
		dyn.SetTracer(cfg.Tracer)
		if err := dyn.AddAll(recs[initial:]); err != nil {
			return nil, err
		}
		cond := dyn.Condensation()
		cond.SetParallelism(cfg.Parallelism)
		return cond, nil
	default:
		return nil, fmt.Errorf("core: unsupported mode %v", cfg.Mode)
	}
}

func classReport(label, records int, cond *Condensation) ClassReport {
	return ClassReport{
		Label:        label,
		Records:      records,
		Groups:       cond.NumGroups(),
		AvgGroupSize: cond.AverageGroupSize(),
		MinGroupSize: cond.MinGroupSize(),
		Cond:         cond,
	}
}
