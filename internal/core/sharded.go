package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strconv"
	"sync"
	"sync/atomic"

	"condensation/internal/mat"
	"condensation/internal/par"
	"condensation/internal/rng"
	"condensation/internal/stats"
	"condensation/internal/telemetry"
)

// Sharded is a dynamic condenser engine built from N independent Dynamic
// shards, each owning its own lock, centroid router, rng stream, and
// telemetry labels. Records are routed to shards deterministically — by a
// stable hash of the record bytes, or by one designated attribute (e.g. a
// class label column) — so the same stream always lands on the same
// shards in the same order and the condensed state is reproducible bit for
// bit at any fixed shard count.
//
// Sharding preserves the paper's privacy contract: each shard maintains
// the k ≤ n(G) ≤ 2k−1 group-size invariant independently, and the merged
// state is simply the union of per-shard group sets — exactly the
// composition argument behind Merge (and behind microaggregation
// partitioning generally), so every merged group still condenses at least
// k records.
//
// Unlike Dynamic, Sharded is safe for concurrent use: reads take per-shard
// read locks and writes take only the locks of the shards their records
// hash to, so concurrent batches contend per shard instead of per engine.
// A single-shard Sharded is bit-identical to a Dynamic built from the same
// configuration (TestEngineInterfaceEquivalence).
type Sharded struct {
	k    int
	dim  int
	opts Options

	shards []*engineShard

	// routeAttr < 0 hashes the whole record; otherwise only attribute
	// routeAttr is hashed, so records sharing that value share a shard.
	routeAttr int

	// met carries the unlabeled engine metrics attached to merged
	// snapshots (synthesis stage timings); tr is the span tracer.
	met engineMetrics
	tr  *telemetry.Tracer

	// gen is the mutation generation shared by every shard: each shard's
	// Dynamic bumps this one counter (not a private one), so a generation
	// value names a unique engine-wide state. Summing per-shard counters
	// would alias distinct states (shard A +2 vs A +1 and B +1 sum the
	// same), which would let a generation-keyed ETag serve stale bytes.
	gen *atomic.Uint64
}

// engineShard pairs one Dynamic with its lock. The shard's Dynamic is
// only ever touched with mu held.
type engineShard struct {
	mu  sync.RWMutex
	dyn *Dynamic
}

// Sharded returns a sharded dynamic engine with the given number of
// independent shards over records of the given dimensionality, for
// pure-stream deployments with no initial database. Shard 0 draws from
// the Condenser's master rng stream itself — so a 1-shard engine is
// bit-identical to Condenser.Dynamic — and every further shard draws from
// an independent child stream derived from it at construction.
func (c *Condenser) Sharded(dim, shards int) (*Sharded, error) {
	srcs, err := shardSources(c, shards)
	if err != nil {
		return nil, err
	}
	s := &Sharded{k: c.k, dim: dim, opts: c.opts, routeAttr: -1}
	for i := 0; i < shards; i++ {
		d, err := NewDynamicEmpty(dim, c.k, c.opts, srcs[i])
		if err != nil {
			return nil, err
		}
		d.setSearch(c.search)
		s.shards = append(s.shards, &engineShard{dyn: d})
	}
	s.finish(c)
	return s, nil
}

// ShardedFrom returns a sharded engine seeded from an existing
// condensation: the initial groups are dealt round-robin across the
// shards (group j to shard j mod N — stable, so resuming at a fixed shard
// count is reproducible), and the initial condensation's dimensionality
// is used while its k and options are superseded by the Condenser's, as
// in DynamicFrom. A 1-shard ShardedFrom is bit-identical to DynamicFrom.
func (c *Condenser) ShardedFrom(initial *Condensation, shards int) (*Sharded, error) {
	if initial == nil {
		return nil, errors.New("core: nil initial condensation")
	}
	srcs, err := shardSources(c, shards)
	if err != nil {
		return nil, err
	}
	parts := make([][]*stats.Group, shards)
	for j, g := range initial.Groups() {
		parts[j%shards] = append(parts[j%shards], g)
	}
	s := &Sharded{k: c.k, dim: initial.dim, opts: c.opts, routeAttr: -1}
	for i := 0; i < shards; i++ {
		var d *Dynamic
		var err error
		if len(parts[i]) == 0 {
			// More shards than initial groups: the shard starts empty.
			d, err = NewDynamicEmpty(initial.dim, c.k, c.opts, srcs[i])
		} else {
			d, err = NewDynamic(newCondensation(initial.dim, initial.k, initial.opts, parts[i]), srcs[i])
		}
		if err != nil {
			return nil, err
		}
		d.k = c.k
		d.opts = c.opts
		d.setSearch(c.search)
		s.shards = append(s.shards, &engineShard{dyn: d})
	}
	s.finish(c)
	return s, nil
}

// finish wires the Condenser's observability, shares one mutation
// generation counter across the shards, partitions the group-id space per
// shard, and divides the speculation parallelism across them.
func (s *Sharded) finish(c *Condenser) {
	s.gen = new(atomic.Uint64)
	for i, sh := range s.shards {
		sh.dyn.gen = s.gen
		// Shard i allocates stable group ids under base i<<48, so ids from
		// different shards can never collide and GroupByID recovers the
		// owning shard from the id alone. ShardedFrom annotated its initial
		// deal before the bases were known; rebase renumbers it.
		sh.dyn.shardIndex = i
		sh.dyn.rebaseIDs(uint64(i) << groupIDShardShift)
	}
	s.SetParallelism(c.search.Parallelism)
	s.SetTelemetry(c.tel)
	s.SetTracer(c.trace)
	s.SetJournal(c.journal)
}

// SetJournal attaches a group-lifecycle journal to every shard; events are
// stamped with the emitting shard's index. Nil disables recording.
func (s *Sharded) SetJournal(j *telemetry.Journal) {
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.dyn.SetJournal(j)
		sh.mu.Unlock()
	}
}

// shardSources derives one rng stream per shard: shard 0 takes the master
// stream, shards 1..N−1 take children split from it before any record is
// ingested. Derivation happens entirely at construction, so each shard's
// stream depends only on the master seed and the shard count.
func shardSources(c *Condenser, shards int) ([]*rng.Source, error) {
	if shards < 1 {
		return nil, fmt.Errorf("core: shard count %d, must be ≥ 1", shards)
	}
	srcs := make([]*rng.Source, shards)
	srcs[0] = c.rng()
	for i := 1; i < shards; i++ {
		srcs[i] = srcs[0].Split()
	}
	return srcs, nil
}

// SetRoutingAttribute switches record→shard routing from whole-record
// hashing to hashing one attribute alone, so records agreeing on that
// attribute (a class label, a tenant id) always share a shard — the
// class-partitioned serving shape. It must be called before any record is
// ingested: re-routing a live engine would break reproducibility.
func (s *Sharded) SetRoutingAttribute(attr int) error {
	if attr < 0 || attr >= s.dim {
		return fmt.Errorf("core: routing attribute %d out of range [0,%d)", attr, s.dim)
	}
	if s.TotalCount() > 0 {
		return errors.New("core: routing cannot change after records were ingested")
	}
	s.routeAttr = attr
	return nil
}

// FNV-1a parameters for the stable record→shard hash.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hashFloat folds the 8 bytes of one float64 into an FNV-1a state.
func hashFloat(h uint64, v float64) uint64 {
	b := math.Float64bits(v)
	for i := 0; i < 8; i++ {
		h ^= b & 0xff
		h *= fnvPrime64
		b >>= 8
	}
	return h
}

// shardOf routes a record: FNV-1a over the record's float64 bytes (or the
// routing attribute's bytes alone), reduced modulo the shard count. The
// hash depends only on the record values, so routing is stable across
// runs, processes, and architectures.
func (s *Sharded) shardOf(x mat.Vector) int {
	n := len(s.shards)
	if n == 1 {
		return 0
	}
	h := uint64(fnvOffset64)
	if s.routeAttr >= 0 {
		h = hashFloat(h, x[s.routeAttr])
	} else {
		for _, v := range x {
			h = hashFloat(h, v)
		}
	}
	return int(h % uint64(n))
}

// K returns the indistinguishability level.
func (s *Sharded) K() int { return s.k }

// Dim returns the attribute dimensionality.
func (s *Sharded) Dim() int { return s.dim }

// NumShards returns the number of independent shards.
func (s *Sharded) NumShards() int { return len(s.shards) }

// Synchronized reports true: Sharded performs its own per-shard locking
// and is safe for concurrent use.
func (s *Sharded) Synchronized() bool { return true }

// NumGroups returns the group count summed over shards.
func (s *Sharded) NumGroups() int {
	var n int
	for _, sh := range s.shards {
		sh.mu.RLock()
		n += sh.dyn.NumGroups()
		sh.mu.RUnlock()
	}
	return n
}

// TotalCount returns the number of records condensed so far, summed over
// the shards' cached running counts.
func (s *Sharded) TotalCount() int {
	var n int
	for _, sh := range s.shards {
		sh.mu.RLock()
		n += sh.dyn.TotalCount()
		sh.mu.RUnlock()
	}
	return n
}

// Splits returns the number of group splits performed, summed over shards.
func (s *Sharded) Splits() int {
	var n int
	for _, sh := range s.shards {
		sh.mu.RLock()
		n += sh.dyn.Splits()
		sh.mu.RUnlock()
	}
	return n
}

// validateRecord rejects records the engine cannot condense, before any
// shard is touched.
func (s *Sharded) validateRecord(x mat.Vector) error {
	if len(x) != s.dim {
		return fmt.Errorf("core: stream record dimension %d, want %d", len(x), s.dim)
	}
	if !x.IsFinite() {
		return errors.New("core: stream record has non-finite values")
	}
	return nil
}

// Add routes one record to its shard and ingests it under that shard's
// lock.
func (s *Sharded) Add(x mat.Vector) error {
	if err := s.validateRecord(x); err != nil {
		return err
	}
	sh := s.shards[s.shardOf(x)]
	sh.mu.Lock()
	err := sh.dyn.Add(x)
	sh.mu.Unlock()
	return err
}

// AddAll streams a batch of records through Add. For large batches,
// AddBatch produces the identical condensation faster.
func (s *Sharded) AddAll(records []mat.Vector) error {
	return s.AddAllContext(context.Background(), records)
}

// AddAllContext is AddAll with cancellation between records. Records
// admitted before cancellation stay condensed.
func (s *Sharded) AddAllContext(ctx context.Context, records []mat.Vector) error {
	for i, x := range records {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("core: stream cancelled at record %d: %w", i, err)
		}
		if err := s.Add(x); err != nil {
			return fmt.Errorf("core: stream record %d: %w", i, err)
		}
	}
	return nil
}

// AddBatch ingests a batch of records, producing the exact condensation
// an Add loop over the same records produces. See AddBatchContext.
func (s *Sharded) AddBatch(records []mat.Vector) error {
	return s.AddBatchContext(context.Background(), records)
}

// AddBatchContext is the sharded engine's high-throughput ingest path:
// the batch is validated up front, partitioned by the routing hash into
// per-shard sub-batches that preserve stream order, and the sub-batches
// are applied concurrently — each through its shard's speculative batch
// engine, under that shard's lock alone. Because routing depends only on
// record values and each shard sees its records in stream order, the
// result is bit-identical to a sequential Add loop over the same batch,
// at any concurrency.
//
// Cancellation is checked per shard at record boundaries; records applied
// before cancellation stay condensed. The error returned is the
// lowest-shard-index failure, so error reporting is deterministic too.
func (s *Sharded) AddBatchContext(ctx context.Context, records []mat.Vector) error {
	for i, x := range records {
		if err := s.validateRecord(x); err != nil {
			return fmt.Errorf("core: batch record %d: %w", i, err)
		}
	}
	if len(records) == 0 {
		return nil
	}
	if len(s.shards) == 1 {
		sh := s.shards[0]
		sh.mu.Lock()
		err := sh.dyn.AddBatchContext(ctx, records)
		sh.mu.Unlock()
		return err
	}

	ctx, sp := s.tr.Start(ctx, "sharded.add_batch")
	sp.SetAttrInt("records", len(records))
	sp.SetAttrInt("shards", len(s.shards))
	defer sp.End()

	// Partition into order-preserving per-shard sub-batches backed by one
	// allocation: count, carve, fill.
	ids := make([]int, len(records))
	counts := make([]int, len(s.shards))
	for i, x := range records {
		ids[i] = s.shardOf(x)
		counts[ids[i]]++
	}
	backing := make([]mat.Vector, 0, len(records))
	parts := make([][]mat.Vector, len(s.shards))
	off := 0
	for i, c := range counts {
		parts[i] = backing[off : off : off+c]
		off += c
	}
	for i, x := range records {
		parts[ids[i]] = append(parts[ids[i]], x)
	}

	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i, part := range parts {
		if len(part) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, part []mat.Vector) {
			defer wg.Done()
			shCtx := ctx
			if sp != nil {
				var shSpan *telemetry.Span
				shCtx, shSpan = s.tr.Start(ctx, "sharded.shard")
				shSpan.SetAttrInt("shard", i)
				shSpan.SetAttrInt("records", len(part))
				defer shSpan.End()
			}
			sh := s.shards[i]
			sh.mu.Lock()
			errs[i] = sh.dyn.AddBatchContext(shCtx, part)
			sh.mu.Unlock()
		}(i, part)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Condensation snapshots the merged state: every shard's groups, cloned
// under that shard's read lock, concatenated in shard order — a stable
// ordering, so repeated snapshots of the same state serialize
// byte-identically. Each shard's snapshot is internally consistent; under
// concurrent ingestion the merge is the union of per-shard snapshots, not
// a global point-in-time cut.
func (s *Sharded) Condensation() *Condensation {
	var groups []*stats.Group
	var ids []uint64
	for _, sh := range s.shards {
		sh.mu.RLock()
		cond := sh.dyn.Condensation()
		sh.mu.RUnlock()
		groups = append(groups, cond.groups...)
		ids = append(ids, cond.groupIDs...)
	}
	merged := newCondensation(s.dim, s.k, s.opts, groups)
	merged.groupIDs = ids
	merged.met = s.met
	merged.tr = s.tr
	return merged
}

// Shard snapshots one shard's groups. It panics when i is out of range.
func (s *Sharded) Shard(i int) *Condensation {
	sh := s.shards[i]
	sh.mu.RLock()
	cond := sh.dyn.Condensation()
	sh.mu.RUnlock()
	cond.met = s.met
	cond.tr = s.tr
	return cond
}

// ShardCounts returns shard i's live record/group/split counts under its
// read lock, without materializing groups — the accessor periodic load
// scrapes use.
func (s *Sharded) ShardCounts(i int) (records, groups, splits int) {
	sh := s.shards[i]
	sh.mu.RLock()
	records, groups, splits = sh.dyn.TotalCount(), sh.dyn.NumGroups(), sh.dyn.Splits()
	sh.mu.RUnlock()
	return records, groups, splits
}

// ShardGroupSizes appends shard i's live per-group record counts to buf
// under that shard's read lock — no group cloning, so size-only consumers
// (per-shard stats, k-invariant checks) stay O(G) ints per shard.
func (s *Sharded) ShardGroupSizes(i int, buf []int) []int {
	sh := s.shards[i]
	sh.mu.RLock()
	buf = sh.dyn.ShardGroupSizes(0, buf)
	sh.mu.RUnlock()
	return buf
}

// Generation returns the engine-wide mutation generation: the shared
// counter every shard advances on each applied record. Equal generations
// imply bit-identical merged state; the read is one atomic load, no shard
// locks.
func (s *Sharded) Generation() uint64 { return s.gen.Load() }

// SetTelemetry attaches a metrics registry. With more than one shard,
// every engine series carries a shard="i" label so per-shard ingest
// rates, group counts, and split events are separable; a single-shard
// engine registers the exact unlabeled series Dynamic does.
func (s *Sharded) SetTelemetry(reg *telemetry.Registry) {
	s.met = newEngineMetrics(reg)
	for i, sh := range s.shards {
		sh.mu.Lock()
		if len(s.shards) == 1 {
			sh.dyn.SetTelemetry(reg)
		} else {
			sh.dyn.setTelemetryLabeled(reg, "shard", strconv.Itoa(i))
		}
		sh.mu.Unlock()
	}
}

// SetTracer attaches a span tracer to the engine and every shard.
func (s *Sharded) SetTracer(tr *telemetry.Tracer) {
	s.tr = tr
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.dyn.SetTracer(tr)
		sh.mu.Unlock()
	}
}

// SetNeighborSearch selects the routing backend for every shard.
func (s *Sharded) SetNeighborSearch(search NeighborSearch) error {
	if err := search.validate(); err != nil {
		return err
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		err := sh.dyn.SetNeighborSearch(search)
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// SetIndexPrecision selects the routing index arithmetic for every
// shard. Precision never changes output: float32 pruning re-verifies in
// float64 before any routing decision.
func (s *Sharded) SetIndexPrecision(p IndexPrecision) error {
	if err := p.validate(); err != nil {
		return err
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		err := sh.dyn.SetIndexPrecision(p)
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// SetParallelism bounds the total speculation workers across the engine:
// the budget (values < 1 mean runtime.NumCPU()) is divided evenly among
// the shards, each shard receiving at least one worker, since the shards
// themselves already run concurrently during AddBatch. Parallelism never
// changes output.
func (s *Sharded) SetParallelism(p int) {
	per := par.Workers(p) / len(s.shards)
	if per < 1 {
		per = 1
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.dyn.SetParallelism(per)
		sh.mu.Unlock()
	}
}
