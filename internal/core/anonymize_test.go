package core

import (
	"testing"

	"condensation/internal/dataset"
	"condensation/internal/mat"
	"condensation/internal/rng"
)

// toyClassification builds a two-class data set with well-separated
// classes.
func toyClassification(seed uint64, perClass int) *dataset.Dataset {
	r := rng.New(seed)
	ds := &dataset.Dataset{
		Name:       "toy",
		Attrs:      []string{"x", "y"},
		ClassNames: []string{"a", "b"},
		Task:       dataset.Classification,
	}
	for i := 0; i < perClass; i++ {
		ds.X = append(ds.X, mat.Vector{r.Norm(), r.Norm()})
		ds.Labels = append(ds.Labels, 0)
	}
	for i := 0; i < perClass; i++ {
		ds.X = append(ds.X, mat.Vector{10 + r.Norm(), 10 + r.Norm()})
		ds.Labels = append(ds.Labels, 1)
	}
	return ds
}

func toyRegression(seed uint64, n int) *dataset.Dataset {
	r := rng.New(seed)
	ds := &dataset.Dataset{
		Name:  "toyreg",
		Attrs: []string{"x"},
		Task:  dataset.Regression,
	}
	for i := 0; i < n; i++ {
		x := r.Uniform(0, 10)
		ds.X = append(ds.X, mat.Vector{x})
		ds.Targets = append(ds.Targets, 2*x+r.NormMeanStd(0, 0.1))
	}
	return ds
}

func TestAnonymizeClassificationStatic(t *testing.T) {
	ds := toyClassification(1, 30)
	anon, report, err := Anonymize(ds, AnonymizeConfig{K: 5, Mode: ModeStatic}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := anon.Validate(); err != nil {
		t.Fatal(err)
	}
	if anon.Len() != ds.Len() {
		t.Errorf("anonymized %d records, want %d", anon.Len(), ds.Len())
	}
	counts := anon.ClassCounts()
	if counts[0] != 30 || counts[1] != 30 {
		t.Errorf("class counts %v, want [30 30]", counts)
	}
	if len(report.Classes) != 2 {
		t.Fatalf("%d class reports", len(report.Classes))
	}
	for _, cr := range report.Classes {
		if cr.MinGroupSize < 5 {
			t.Errorf("class %d min group size %d < k", cr.Label, cr.MinGroupSize)
		}
	}
	if report.AvgGroupSize() < 5 {
		t.Errorf("AvgGroupSize = %g < k", report.AvgGroupSize())
	}
	if report.TotalRecords() != 60 {
		t.Errorf("TotalRecords = %d", report.TotalRecords())
	}
}

func TestAnonymizeClassesStaySeparated(t *testing.T) {
	// With classes 10σ apart, every synthesized class-0 record must stay
	// far from the class-1 region, or the anonymized labels are wrong.
	ds := toyClassification(3, 40)
	anon, _, err := Anonymize(ds, AnonymizeConfig{K: 8, Mode: ModeStatic}, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range anon.X {
		nearA := x.Dist(mat.Vector{0, 0}) < x.Dist(mat.Vector{10, 10})
		if nearA != (anon.Labels[i] == 0) {
			t.Errorf("record %d at %v labelled %d", i, x, anon.Labels[i])
		}
	}
}

func TestAnonymizeClassificationDynamic(t *testing.T) {
	ds := toyClassification(5, 50)
	anon, report, err := Anonymize(ds, AnonymizeConfig{K: 5, Mode: ModeDynamic, InitialFraction: 0.3}, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if anon.Len() != ds.Len() {
		t.Errorf("anonymized %d records, want %d", anon.Len(), ds.Len())
	}
	// Dynamic maintenance keeps groups in [k, 2k), so the average group
	// size must be in a sane band.
	if avg := report.AvgGroupSize(); avg < 5 || avg >= 10 {
		t.Errorf("dynamic AvgGroupSize = %g, want in [5, 10)", avg)
	}
}

func TestAnonymizeRegression(t *testing.T) {
	ds := toyRegression(7, 80)
	anon, report, err := Anonymize(ds, AnonymizeConfig{K: 8, Mode: ModeStatic}, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if err := anon.Validate(); err != nil {
		t.Fatal(err)
	}
	if anon.Len() != 80 || anon.Dim() != 1 {
		t.Fatalf("anonymized %dx%d", anon.Len(), anon.Dim())
	}
	if len(report.Classes) != 1 || report.Classes[0].Label != -1 {
		t.Errorf("regression report %+v", report.Classes)
	}
	// The y ≈ 2x relationship must survive anonymization (joint
	// condensation of features and target preserves the correlation).
	var worst float64
	var bad int
	for i, x := range anon.X {
		err := anon.Targets[i] - 2*x[0]
		if err < 0 {
			err = -err
		}
		if err > worst {
			worst = err
		}
		if err > 2 {
			bad++
		}
	}
	if bad > 8 { // 10% tolerance
		t.Errorf("%d/80 anonymized points far from y=2x (worst |err| %.2f)", bad, worst)
	}
}

func TestAnonymizeErrors(t *testing.T) {
	ds := toyClassification(9, 10)
	if _, _, err := Anonymize(ds, AnonymizeConfig{K: 0, Mode: ModeStatic}, rng.New(1)); err == nil {
		t.Error("k=0 accepted")
	}
	if _, _, err := Anonymize(ds, AnonymizeConfig{K: 2, Mode: Mode(9)}, rng.New(1)); err == nil {
		t.Error("bad mode accepted")
	}
	if _, _, err := Anonymize(ds, AnonymizeConfig{K: 2, Mode: ModeStatic}, nil); err == nil {
		t.Error("nil source accepted")
	}
	empty := &dataset.Dataset{Task: dataset.Classification}
	if _, _, err := Anonymize(empty, AnonymizeConfig{K: 2}, rng.New(1)); err == nil {
		t.Error("empty data set accepted")
	}
	bad := toyClassification(10, 5)
	bad.Labels = bad.Labels[:3]
	if _, _, err := Anonymize(bad, AnonymizeConfig{K: 2}, rng.New(1)); err == nil {
		t.Error("invalid data set accepted")
	}
	badTask := toyClassification(11, 5)
	badTask.Task = dataset.Task(9)
	if _, _, err := Anonymize(badTask, AnonymizeConfig{K: 2}, rng.New(1)); err == nil {
		t.Error("unknown task accepted")
	}
}

func TestAnonymizeSmallClassSmallerThanK(t *testing.T) {
	ds := toyClassification(12, 3) // classes of 3 with k=5
	anon, report, err := Anonymize(ds, AnonymizeConfig{K: 5, Mode: ModeStatic}, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	if anon.Len() != 6 {
		t.Errorf("anonymized %d records, want 6", anon.Len())
	}
	for _, cr := range report.Classes {
		if cr.Groups != 1 {
			t.Errorf("class %d has %d groups, want 1 undersized group", cr.Label, cr.Groups)
		}
	}
}

func TestAnonymizeDeterministic(t *testing.T) {
	ds := toyClassification(14, 20)
	cfg := AnonymizeConfig{K: 4, Mode: ModeStatic}
	a1, _, err := Anonymize(ds, cfg, rng.New(15))
	if err != nil {
		t.Fatal(err)
	}
	a2, _, err := Anonymize(ds, cfg, rng.New(15))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a1.X {
		if !a1.X[i].Equal(a2.X[i], 0) || a1.Labels[i] != a2.Labels[i] {
			t.Fatal("Anonymize is not deterministic for a fixed seed")
		}
	}
}

func TestReportEmptyAvg(t *testing.T) {
	var r Report
	if r.AvgGroupSize() != 0 {
		t.Error("empty report AvgGroupSize != 0")
	}
}
