package core

import (
	"bytes"
	"context"
	"math"
	"testing"

	"condensation/internal/mat"
	"condensation/internal/rng"
	"condensation/internal/telemetry"
)

// dynamicFingerprint captures everything the batch-equivalence contract
// promises byte for byte: every group's exact moment encoding, the cached
// centroids, and a synthesized sample.
func dynamicFingerprint(t *testing.T, d *Dynamic) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, g := range d.groups {
		enc, err := g.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(enc)
	}
	for _, c := range d.centroids {
		for _, v := range c {
			var b [8]byte
			u := math.Float64bits(v)
			for i := range b {
				b[i] = byte(u >> (8 * i))
			}
			buf.Write(b[:])
		}
	}
	synth, err := d.Condensation().Synthesize(rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range synth {
		for _, v := range x {
			var b [8]byte
			u := math.Float64bits(v)
			for i := range b {
				b[i] = byte(u >> (8 * i))
			}
			buf.Write(b[:])
		}
	}
	return buf.Bytes()
}

// TestAddBatchEquivalence is the determinism contract of the batch ingest
// engine: AddBatch with any routing backend, any speculation parallelism,
// and any batch slicing produces bit-identical groups, centroids, and
// synthesized output to the sequential scan-backend Add loop on the same
// seed — both from an empty condenser and from a static bootstrap.
func TestAddBatchEquivalence(t *testing.T) {
	const k, dim = 6, 4
	stream := gaussianRecords(21, 1200, dim)

	build := func(boot bool) *Dynamic {
		t.Helper()
		var d *Dynamic
		var err error
		if boot {
			cond, serr := Static(gaussianRecords(22, 80, dim), k, rng.New(23), Options{})
			if serr != nil {
				t.Fatal(serr)
			}
			d, err = NewDynamic(cond, rng.New(24))
		} else {
			d, err = NewDynamicEmpty(dim, k, Options{}, rng.New(24))
		}
		if err != nil {
			t.Fatal(err)
		}
		return d
	}

	for _, boot := range []bool{false, true} {
		// Reference: sequential Add loop on the scan backend.
		ref := build(boot)
		if err := ref.SetNeighborSearch(SearchScanSort); err != nil {
			t.Fatal(err)
		}
		for _, x := range stream {
			if err := ref.Add(x); err != nil {
				t.Fatal(err)
			}
		}
		want := dynamicFingerprint(t, ref)

		for _, search := range []NeighborSearch{SearchAuto, SearchScanSort, SearchQuickselect, SearchKDTree} {
			for _, par := range []int{1, 2, 8} {
				for _, batch := range []int{1, 7, 256, len(stream)} {
					d := build(boot)
					if err := d.SetNeighborSearch(search); err != nil {
						t.Fatal(err)
					}
					d.SetParallelism(par)
					for lo := 0; lo < len(stream); lo += batch {
						hi := lo + batch
						if hi > len(stream) {
							hi = len(stream)
						}
						if err := d.AddBatch(stream[lo:hi]); err != nil {
							t.Fatal(err)
						}
					}
					if got := dynamicFingerprint(t, d); !bytes.Equal(got, want) {
						t.Fatalf("boot=%v search=%v par=%d batch=%d: AddBatch diverged from sequential Add loop",
							boot, search, par, batch)
					}
				}
			}
		}

		// The single-record Add path must also agree across backends.
		for _, search := range []NeighborSearch{SearchAuto, SearchKDTree} {
			d := build(boot)
			if err := d.SetNeighborSearch(search); err != nil {
				t.Fatal(err)
			}
			if err := d.AddAll(stream); err != nil {
				t.Fatal(err)
			}
			if got := dynamicFingerprint(t, d); !bytes.Equal(got, want) {
				t.Fatalf("boot=%v search=%v: Add diverged from scan backend", boot, search)
			}
		}
	}
}

// Telemetry on the batch path is observe-only: with a registry attached,
// AddBatch must produce the same bytes, and the stream counter must still
// count every record exactly once.
func TestAddBatchTelemetryObserveOnly(t *testing.T) {
	const k, dim = 5, 3
	stream := gaussianRecords(31, 500, dim)

	plain, err := NewDynamicEmpty(dim, k, Options{}, rng.New(32))
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.AddBatch(stream); err != nil {
		t.Fatal(err)
	}
	want := dynamicFingerprint(t, plain)

	reg := telemetry.NewRegistry()
	instr, err := NewDynamicEmpty(dim, k, Options{}, rng.New(32))
	if err != nil {
		t.Fatal(err)
	}
	instr.SetTelemetry(reg)
	if err := instr.AddBatch(stream[:200]); err != nil {
		t.Fatal(err)
	}
	if err := instr.AddBatch(stream[200:]); err != nil {
		t.Fatal(err)
	}
	if got := dynamicFingerprint(t, instr); !bytes.Equal(got, want) {
		t.Fatal("telemetry changed AddBatch output")
	}
	if got := reg.Counter(metricStreamRecords).Value(); got != 500 {
		t.Errorf("stream_records = %d, want 500", got)
	}
	if got, want := reg.Gauge(metricGroups).Value(), float64(instr.NumGroups()); got != want {
		t.Errorf("groups gauge = %g, want %g", got, want)
	}
	if reg.Counter(metricSplitEvents).Value() == 0 {
		t.Error("no split events recorded over 500 records at k=5")
	}
}

func TestAddBatchValidatesUpFront(t *testing.T) {
	d, err := NewDynamicEmpty(2, 3, Options{}, rng.New(41))
	if err != nil {
		t.Fatal(err)
	}
	batch := []mat.Vector{{1, 2}, {3, 4}, {5}}
	if err := d.AddBatch(batch); err == nil {
		t.Fatal("short record accepted")
	}
	if d.TotalCount() != 0 {
		t.Errorf("TotalCount = %d after rejected batch, want 0", d.TotalCount())
	}
	if err := d.AddBatch([]mat.Vector{{1, math.NaN()}}); err == nil {
		t.Error("non-finite record accepted")
	}
	if err := d.AddBatch(nil); err != nil {
		t.Errorf("empty batch rejected: %v", err)
	}
}

func TestAddBatchCancelled(t *testing.T) {
	d, err := NewDynamicEmpty(2, 3, Options{}, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := d.AddBatchContext(ctx, gaussianRecords(43, 50, 2)); err == nil {
		t.Fatal("cancelled context accepted")
	}
	if d.TotalCount() != 0 {
		t.Errorf("TotalCount = %d after pre-cancelled batch, want 0", d.TotalCount())
	}
	// A live context ingests normally afterwards.
	if err := d.AddBatch(gaussianRecords(43, 50, 2)); err != nil {
		t.Fatal(err)
	}
	if d.TotalCount() != 50 {
		t.Errorf("TotalCount = %d, want 50", d.TotalCount())
	}
}

// The auto backend promotes to the centroid kd-index once the group count
// crosses the cutoff, and the promotion is visible in the telemetry
// backend label without disturbing the condensation.
func TestDynamicAutoPromotion(t *testing.T) {
	const k = 2
	reg := telemetry.NewRegistry()
	d, err := NewDynamicEmpty(3, k, Options{}, rng.New(44))
	if err != nil {
		t.Fatal(err)
	}
	d.SetTelemetry(reg)
	if _, isScan := d.router.(*scanRouter); !isScan {
		t.Fatal("auto backend did not start on the scan router")
	}
	// Enough records to push the group count past the cutoff: groups hold
	// at most 2k−1 = 3 records, so 4·cutoff records guarantee promotion.
	if err := d.AddBatch(gaussianRecords(45, 4*dynamicIndexCutoff, 3)); err != nil {
		t.Fatal(err)
	}
	if d.NumGroups() < dynamicIndexCutoff {
		t.Fatalf("only %d groups formed, wanted ≥ %d", d.NumGroups(), dynamicIndexCutoff)
	}
	if _, isKD := d.router.(*kdRouter); !isKD {
		t.Error("auto backend did not promote to the kd router")
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`backend="centroid-kdtree"`)) {
		t.Error("exposition missing centroid-kdtree neighbor_search series after promotion")
	}
}

func TestSetNeighborSearchInvalid(t *testing.T) {
	d, err := NewDynamicEmpty(2, 2, Options{}, rng.New(46))
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SetNeighborSearch(NeighborSearch(99)); err == nil {
		t.Error("unknown backend accepted")
	}
}
