package core

import (
	"bytes"
	"testing"

	"condensation/internal/mat"
	"condensation/internal/rng"
)

func TestParseIndexPrecision(t *testing.T) {
	cases := []struct {
		in   string
		want IndexPrecision
		ok   bool
	}{
		{"float64", Float64, true},
		{"f64", Float64, true},
		{"float32", Float32, true},
		{"f32", Float32, true},
		{"", 0, false},
		{"float16", 0, false},
	}
	for _, c := range cases {
		got, err := ParseIndexPrecision(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseIndexPrecision(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseIndexPrecision(%q) accepted, want error", c.in)
		}
	}
	if Float64.String() != "float64" || Float32.String() != "float32" {
		t.Errorf("String() = %q, %q", Float64.String(), Float32.String())
	}
	if err := IndexPrecision(7).validate(); err == nil {
		t.Error("IndexPrecision(7) validated, want error")
	}
}

// tieStream returns a record stream salted with exact duplicates — each
// duplicated record is routed twice, the second time potentially facing
// equidistant centroids, so the lexicographic (distance, id) tie-break is
// actually exercised rather than just documented.
func tieStream(seed uint64, n, dim int) []mat.Vector {
	recs := gaussianRecords(seed, n, dim)
	for i := 3; i+1 < len(recs); i += 7 {
		recs[i+1] = recs[i].Clone()
	}
	return recs
}

// TestFloat32RoutingEquivalence is the Float32 index mode's correctness
// contract: pruning in float32 with the safety margin and re-verifying in
// float64 must leave every routing decision — and therefore the condensed
// groups, centroids, and synthesized output — bit-identical to the default
// float64 scan, through both the per-record Add path and AddBatch at
// several parallelism levels.
func TestFloat32RoutingEquivalence(t *testing.T) {
	const k, dim = 6, 4
	stream := tieStream(31, 1500, dim)

	build := func(p IndexPrecision) *Dynamic {
		t.Helper()
		d, err := NewDynamicEmpty(dim, k, Options{}, rng.New(32))
		if err != nil {
			t.Fatal(err)
		}
		if err := d.SetIndexPrecision(p); err != nil {
			t.Fatal(err)
		}
		return d
	}

	ref := build(Float64)
	for _, x := range stream {
		if err := ref.Add(x); err != nil {
			t.Fatal(err)
		}
	}
	want := dynamicFingerprint(t, ref)

	// Per-record Add path under the f32 router.
	d := build(Float32)
	if got := d.router.label(); got != "centroid-scan-f32" {
		t.Fatalf("router label = %q, want centroid-scan-f32", got)
	}
	for _, x := range stream {
		if err := d.Add(x); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(dynamicFingerprint(t, d), want) {
		t.Fatal("float32 Add path diverged from float64 routing")
	}

	// Speculative batch path at several worker counts and batch shapes.
	for _, par := range []int{1, 2, 8} {
		for _, batch := range []int{1, 7, 300, len(stream)} {
			d := build(Float32)
			d.SetParallelism(par)
			for lo := 0; lo < len(stream); lo += batch {
				hi := lo + batch
				if hi > len(stream) {
					hi = len(stream)
				}
				if err := d.AddBatch(stream[lo:hi]); err != nil {
					t.Fatal(err)
				}
			}
			if !bytes.Equal(dynamicFingerprint(t, d), want) {
				t.Fatalf("par=%d batch=%d: float32 AddBatch diverged from float64 routing", par, batch)
			}
		}
	}
}

// TestFloat32PrecisionSwitch flips an engine from float64 to float32
// mid-stream and back; the condensed state must match a pure float64 run
// record for record, and switching must preserve the already-built groups.
func TestFloat32PrecisionSwitch(t *testing.T) {
	const k, dim = 5, 3
	stream := tieStream(41, 900, dim)

	ref, err := NewDynamicEmpty(dim, k, Options{}, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range stream {
		if err := ref.Add(x); err != nil {
			t.Fatal(err)
		}
	}

	d, err := NewDynamicEmpty(dim, k, Options{}, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range stream {
		switch i {
		case 300:
			if err := d.SetIndexPrecision(Float32); err != nil {
				t.Fatal(err)
			}
		case 600:
			if err := d.SetIndexPrecision(Float64); err != nil {
				t.Fatal(err)
			}
		}
		if err := d.Add(x); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(dynamicFingerprint(t, d), dynamicFingerprint(t, ref)) {
		t.Fatal("mid-stream precision switches changed the condensed state")
	}
}

// TestShardedFloat32Equivalence checks the sharded engine under Float32:
// per-shard routing must still be exact, so the merged condensation equals
// the float64 run shard for shard.
func TestShardedFloat32Equivalence(t *testing.T) {
	const k, dim, shards = 5, 3, 4
	stream := tieStream(51, 1200, dim)

	build := func(p IndexPrecision) *Sharded {
		t.Helper()
		c, err := NewCondenser(k, WithSeed(52))
		if err != nil {
			t.Fatal(err)
		}
		s, err := c.Sharded(dim, shards)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.SetIndexPrecision(p); err != nil {
			t.Fatal(err)
		}
		return s
	}

	ref := build(Float64)
	if err := ref.AddAll(stream); err != nil {
		t.Fatal(err)
	}
	got := build(Float32)
	if err := got.AddBatch(stream); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < shards; i++ {
		want, err := shardFingerprint(ref.Shard(i))
		if err != nil {
			t.Fatal(err)
		}
		have, err := shardFingerprint(got.Shard(i))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, have) {
			t.Fatalf("shard %d diverged under Float32 indexing", i)
		}
	}
}

// shardFingerprint encodes one shard's groups byte for byte.
func shardFingerprint(c *Condensation) ([]byte, error) {
	var buf bytes.Buffer
	for _, g := range c.Groups() {
		enc, err := g.MarshalBinary()
		if err != nil {
			return nil, err
		}
		buf.Write(enc)
	}
	return buf.Bytes(), nil
}
