package core

import (
	"math"
	"testing"
	"testing/quick"

	"condensation/internal/mat"
	"condensation/internal/rng"
	"condensation/internal/stats"
)

// elongatedGroup builds a 2k-record group stretched along direction (1, 0):
// x spread is large, y spread is small.
func elongatedGroup(t *testing.T, seed uint64, k int) *stats.Group {
	t.Helper()
	r := rng.New(seed)
	g := stats.NewGroup(2)
	for i := 0; i < 2*k; i++ {
		x := mat.Vector{r.Uniform(-10, 10), r.Uniform(-1, 1)}
		if err := g.Add(x); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestSplitGroupCounts(t *testing.T) {
	g := elongatedGroup(t, 1, 10)
	m1, m2, err := SplitGroup(g, 10, SplitPrincipal, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m1.N() != 10 || m2.N() != 10 {
		t.Errorf("child sizes %d, %d, want 10, 10", m1.N(), m2.N())
	}
}

func TestSplitGroupCentroids(t *testing.T) {
	g := elongatedGroup(t, 2, 15)
	eig, err := g.Eigen()
	if err != nil {
		t.Fatal(err)
	}
	parent, err := g.Mean()
	if err != nil {
		t.Fatal(err)
	}
	lambda1 := eig.Values[0]
	e1 := eig.Vector(0)
	offset := math.Sqrt(12*lambda1) / 4

	m1, m2, err := SplitGroup(g, 15, SplitPrincipal, nil)
	if err != nil {
		t.Fatal(err)
	}
	c1, _ := m1.Mean()
	c2, _ := m2.Mean()

	want1 := parent.Clone().AddScaled(-offset, e1)
	want2 := parent.Clone().AddScaled(+offset, e1)
	if !c1.Equal(want1, 1e-9) {
		t.Errorf("child 1 centroid %v, want %v", c1, want1)
	}
	if !c2.Equal(want2, 1e-9) {
		t.Errorf("child 2 centroid %v, want %v", c2, want2)
	}
	// The midpoint of the child centroids is the parent centroid.
	mid := c1.Add(c2).Scale(0.5)
	if !mid.Equal(parent, 1e-9) {
		t.Errorf("children midpoint %v, want parent %v", mid, parent)
	}
}

func TestSplitGroupEigenvalueQuartered(t *testing.T) {
	g := elongatedGroup(t, 3, 12)
	parentEig, err := g.Eigen()
	if err != nil {
		t.Fatal(err)
	}
	m1, _, err := SplitGroup(g, 12, SplitPrincipal, nil)
	if err != nil {
		t.Fatal(err)
	}
	childEig, err := m1.Eigen()
	if err != nil {
		t.Fatal(err)
	}
	// λ₁(M1) = λ₁(M)/4; the second eigenvalue is unchanged. Because
	// λ₁/4 may drop below λ₂, compare sorted multisets.
	wantVals := []float64{parentEig.Values[0] / 4, parentEig.Values[1]}
	if wantVals[0] < wantVals[1] {
		wantVals[0], wantVals[1] = wantVals[1], wantVals[0]
	}
	for i := range wantVals {
		if math.Abs(childEig.Values[i]-wantVals[i]) > 1e-8*(1+wantVals[i]) {
			t.Errorf("child eigenvalue %d = %g, want %g", i, childEig.Values[i], wantVals[i])
		}
	}
}

func TestSplitGroupEigenvectorsPreserved(t *testing.T) {
	g := elongatedGroup(t, 4, 12)
	parentEig, err := g.Eigen()
	if err != nil {
		t.Fatal(err)
	}
	m1, m2, err := SplitGroup(g, 12, SplitPrincipal, nil)
	if err != nil {
		t.Fatal(err)
	}
	for name, child := range map[string]*stats.Group{"m1": m1, "m2": m2} {
		childEig, err := child.Eigen()
		if err != nil {
			t.Fatal(err)
		}
		// Both children share the parent's eigenvectors (up to sign and
		// reordering): every child eigenvector must be (anti)parallel to
		// some parent eigenvector.
		for j := 0; j < childEig.Dim(); j++ {
			v := childEig.Vector(j)
			bestAlign := 0.0
			for p := 0; p < parentEig.Dim(); p++ {
				if a := math.Abs(v.Dot(parentEig.Vector(p))); a > bestAlign {
					bestAlign = a
				}
			}
			if bestAlign < 1-1e-7 {
				t.Errorf("%s eigenvector %d not aligned with any parent eigenvector (best %g)", name, j, bestAlign)
			}
		}
	}
}

func TestSplitGroupChildrenShareCovariance(t *testing.T) {
	g := elongatedGroup(t, 5, 9)
	m1, m2, err := SplitGroup(g, 9, SplitPrincipal, nil)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := m1.Covariance()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := m2.Covariance()
	if err != nil {
		t.Fatal(err)
	}
	if !c1.Equal(c2, 1e-8*(1+c1.FrobeniusNorm())) {
		t.Error("children have different covariance matrices")
	}
}

// The paper notes Sc values differ between the children even though the
// covariances are identical, because the first-order sums differ.
func TestSplitGroupSecondOrderSumsDiffer(t *testing.T) {
	g := elongatedGroup(t, 6, 9)
	m1, m2, err := SplitGroup(g, 9, SplitPrincipal, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m1.SecondOrderSums().Equal(m2.SecondOrderSums(), 1e-12) {
		t.Error("children have identical Sc, expected different")
	}
}

func TestSplitGroupMergeRecoversParentMean(t *testing.T) {
	g := elongatedGroup(t, 7, 11)
	parentMean, _ := g.Mean()
	m1, m2, err := SplitGroup(g, 11, SplitPrincipal, nil)
	if err != nil {
		t.Fatal(err)
	}
	merged := m1.Clone()
	if err := merged.Merge(m2); err != nil {
		t.Fatal(err)
	}
	if merged.N() != g.N() {
		t.Errorf("merged N = %d, want %d", merged.N(), g.N())
	}
	mergedMean, _ := merged.Mean()
	if !mergedMean.Equal(parentMean, 1e-9) {
		t.Errorf("merged mean %v, want %v", mergedMean, parentMean)
	}
}

func TestSplitGroupZeroVariance(t *testing.T) {
	// All records identical: λ₁ = 0, the split offset is 0, and both
	// children coincide with the parent point mass.
	g := stats.NewGroup(2)
	for i := 0; i < 8; i++ {
		if err := g.Add(mat.Vector{3, -2}); err != nil {
			t.Fatal(err)
		}
	}
	m1, m2, err := SplitGroup(g, 4, SplitPrincipal, nil)
	if err != nil {
		t.Fatal(err)
	}
	c1, _ := m1.Mean()
	c2, _ := m2.Mean()
	if !c1.Equal(mat.Vector{3, -2}, 1e-10) || !c2.Equal(mat.Vector{3, -2}, 1e-10) {
		t.Errorf("zero-variance split centroids %v, %v", c1, c2)
	}
}

func TestSplitGroupOneDimensional(t *testing.T) {
	g := stats.NewGroup(1)
	for i := 0; i < 6; i++ {
		if err := g.Add(mat.Vector{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	m1, m2, err := SplitGroup(g, 3, SplitPrincipal, nil)
	if err != nil {
		t.Fatal(err)
	}
	c1, _ := m1.Mean()
	c2, _ := m2.Mean()
	if c1[0] >= c2[0] {
		t.Errorf("1-D split not ordered: %g, %g", c1[0], c2[0])
	}
}

func TestSplitGroupErrors(t *testing.T) {
	g := elongatedGroup(t, 8, 5)
	if _, _, err := SplitGroup(g, 4, SplitPrincipal, nil); err == nil {
		t.Error("n != 2k accepted")
	}
	if _, _, err := SplitGroup(g, 0, SplitPrincipal, nil); err == nil {
		t.Error("k=0 accepted")
	}
	if _, _, err := SplitGroup(g, 5, SplitRandom, nil); err == nil {
		t.Error("SplitRandom without source accepted")
	}
	if _, _, err := SplitGroup(g, 5, SplitAxis(7), nil); err == nil {
		t.Error("unknown axis accepted")
	}
}

func TestSplitGroupRandomAxis(t *testing.T) {
	g := elongatedGroup(t, 9, 10)
	m1, m2, err := SplitGroup(g, 10, SplitRandom, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if m1.N() != 10 || m2.N() != 10 {
		t.Errorf("random-axis child sizes %d, %d", m1.N(), m2.N())
	}
	merged := m1.Clone()
	if err := merged.Merge(m2); err != nil {
		t.Fatal(err)
	}
	parentMean, _ := g.Mean()
	mergedMean, _ := merged.Mean()
	if !mergedMean.Equal(parentMean, 1e-9) {
		t.Error("random-axis split does not preserve the parent mean")
	}
}

// Property: for random elongated groups, the split children's covariance
// trace equals the parent trace minus 3λ_split/4 (only the split
// eigenvalue changes, from λ to λ/4).
func TestSplitGroupTraceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		k := 3 + r.IntN(10)
		g := stats.NewGroup(3)
		for i := 0; i < 2*k; i++ {
			if err := g.Add(mat.Vector{r.Uniform(-5, 5), r.Norm(), r.Uniform(0, 2)}); err != nil {
				return false
			}
		}
		pc, err := g.Covariance()
		if err != nil {
			return false
		}
		pe, err := g.Eigen()
		if err != nil {
			return false
		}
		m1, _, err := SplitGroup(g, k, SplitPrincipal, nil)
		if err != nil {
			return false
		}
		cc, err := m1.Covariance()
		if err != nil {
			return false
		}
		want := pc.Trace() - 3*pe.Values[0]/4
		return math.Abs(cc.Trace()-want) <= 1e-7*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
