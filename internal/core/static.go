package core

import (
	"errors"
	"fmt"
	"sort"

	"condensation/internal/mat"
	"condensation/internal/rng"
	"condensation/internal/stats"
)

// Static runs the CreateCondensedGroups algorithm of Figure 1 on the full
// set of records: while at least k records remain, sample one uniformly at
// random, gather its k−1 nearest remaining neighbours into a group, record
// the group's aggregate statistics, and delete the group's records.
// Remaining records (between 1 and k−1 of them) are folded into the group
// with the nearest centroid, so a few groups may hold more than k records.
//
// The records slice is not modified. Passing k = 1 produces one group per
// record, in which case synthesis reproduces each record exactly — the
// paper's group-size-1 anchor where static condensation equals the
// original data.
func Static(records []mat.Vector, k int, r *rng.Source, opts Options) (*Condensation, error) {
	cond, _, err := StaticWithMembers(records, k, r, opts)
	return cond, err
}

// StaticWithMembers is Static, additionally reporting which original
// records each group condensed: members[g] lists the record indices of
// group g. The membership map is exactly what a condensation deployment
// must *not* publish; it is exposed for privacy evaluation (re-
// identification attacks need the ground truth) and for tests.
func StaticWithMembers(records []mat.Vector, k int, r *rng.Source, opts Options) (*Condensation, [][]int, error) {
	if err := opts.validate(); err != nil {
		return nil, nil, err
	}
	if k < 1 {
		return nil, nil, fmt.Errorf("core: indistinguishability level k = %d, must be ≥ 1", k)
	}
	if r == nil {
		return nil, nil, errors.New("core: nil random source")
	}
	if len(records) == 0 {
		return nil, nil, errors.New("core: no records to condense")
	}
	dim := len(records[0])
	for i, x := range records {
		if len(x) != dim {
			return nil, nil, fmt.Errorf("core: record %d has dimension %d, want %d", i, len(x), dim)
		}
		if !x.IsFinite() {
			return nil, nil, fmt.Errorf("core: record %d has non-finite values", i)
		}
	}

	// k = 1 needs no neighbour search: every record is its own group. This
	// is the paper's anchor case (static condensation at group size 1
	// equals the original data) and deserves the O(n) fast path.
	if k == 1 {
		groups := make([]*stats.Group, len(records))
		members := make([][]int, len(records))
		for i, x := range records {
			g := stats.NewGroup(dim)
			if err := g.Add(x); err != nil {
				return nil, nil, err
			}
			groups[i] = g
			members[i] = []int{i}
		}
		return newCondensation(dim, k, opts, groups), members, nil
	}

	// alive holds indices of records not yet assigned to a group. Removal
	// is swap-delete, so order is not preserved — grouping is randomized by
	// the sampling step anyway.
	alive := make([]int, len(records))
	for i := range alive {
		alive[i] = i
	}

	var groups []*stats.Group
	var members [][]int
	distSq := make([]float64, 0, len(records))
	for len(alive) >= k {
		// Randomly sample a data point X from D.
		pick := r.IntN(len(alive))
		seed := records[alive[pick]]

		// Find the k−1 closest remaining records to X.
		distSq = distSq[:0]
		for _, idx := range alive {
			distSq = append(distSq, seed.DistSq(records[idx]))
		}
		// Order alive positions by distance to the seed; position `pick`
		// has distance 0 and is therefore selected first.
		order := make([]int, len(alive))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return distSq[order[a]] < distSq[order[b]] })

		g := stats.NewGroup(dim)
		var member []int
		for _, pos := range order[:k] {
			if err := g.Add(records[alive[pos]]); err != nil {
				return nil, nil, fmt.Errorf("core: adding record to group: %w", err)
			}
			member = append(member, alive[pos])
		}
		groups = append(groups, g)
		members = append(members, member)

		// Delete the k chosen records from the alive set (descending
		// positions so swap-delete does not disturb pending positions).
		chosen := append([]int(nil), order[:k]...)
		sort.Sort(sort.Reverse(sort.IntSlice(chosen)))
		for _, pos := range chosen {
			alive[pos] = alive[len(alive)-1]
			alive = alive[:len(alive)-1]
		}
	}

	// Handle the final < k leftover records.
	if len(alive) > 0 {
		switch opts.Leftover {
		case LeftoverNearestGroup:
			if len(groups) == 0 {
				// Fewer than k records in total: the best available option
				// is a single undersized group (the caller asked for an
				// indistinguishability level the data cannot support).
				g := stats.NewGroup(dim)
				for _, idx := range alive {
					if err := g.Add(records[idx]); err != nil {
						return nil, nil, err
					}
				}
				groups = append(groups, g)
				members = append(members, append([]int(nil), alive...))
				break
			}
			centroids := make([]mat.Vector, len(groups))
			for i, g := range groups {
				m, err := g.Mean()
				if err != nil {
					return nil, nil, err
				}
				centroids[i] = m
			}
			for _, idx := range alive {
				best, bestD := 0, records[idx].DistSq(centroids[0])
				for gi := 1; gi < len(centroids); gi++ {
					if d := records[idx].DistSq(centroids[gi]); d < bestD {
						best, bestD = gi, d
					}
				}
				if err := groups[best].Add(records[idx]); err != nil {
					return nil, nil, err
				}
				members[best] = append(members[best], idx)
			}
		case LeftoverOwnGroup:
			g := stats.NewGroup(dim)
			for _, idx := range alive {
				if err := g.Add(records[idx]); err != nil {
					return nil, nil, err
				}
			}
			groups = append(groups, g)
			members = append(members, append([]int(nil), alive...))
		}
	}

	return newCondensation(dim, k, opts, groups), members, nil
}
