package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"condensation/internal/kernel"
	"condensation/internal/knn"
	"condensation/internal/mat"
	"condensation/internal/rng"
	"condensation/internal/stats"
	"condensation/internal/telemetry"
)

// Static runs the CreateCondensedGroups algorithm of Figure 1 on the full
// set of records: while at least k records remain, sample one uniformly at
// random, gather its k−1 nearest remaining neighbours into a group, record
// the group's aggregate statistics, and delete the group's records.
// Remaining records (between 1 and k−1 of them) are folded into the group
// with the nearest centroid, so a few groups may hold more than k records.
//
// The records slice is not modified. Passing k = 1 produces one group per
// record, in which case synthesis reproduces each record exactly — the
// paper's group-size-1 anchor where static condensation equals the
// original data.
//
// Deprecated: use the Condenser facade — NewCondenser(k, WithSeed(s),
// ...).Static(records) — which also exposes the neighbour-search backend
// and the parallelism of the distance sweep.
func Static(records []mat.Vector, k int, r *rng.Source, opts Options) (*Condensation, error) {
	cond, _, err := staticCondense(context.Background(), records, k, r, opts, searchConfig{}, nil, nil)
	return cond, err
}

// StaticWithMembers is Static, additionally reporting which original
// records each group condensed: members[g] lists the record indices of
// group g. The membership map is exactly what a condensation deployment
// must *not* publish; it is exposed for privacy evaluation (re-
// identification attacks need the ground truth) and for tests.
//
// Deprecated: use NewCondenser(k, ...).StaticWithMembers(records).
func StaticWithMembers(records []mat.Vector, k int, r *rng.Source, opts Options) (*Condensation, [][]int, error) {
	return staticCondense(context.Background(), records, k, r, opts, searchConfig{}, nil, nil)
}

// staticCondense is the engine behind Static and Condenser.Static. Per
// group it draws exactly one value from r (the seed-record sample), so
// every search backend consumes the identical rng stream; with distinct
// pairwise distances all backends therefore produce identical groups, with
// members added in ascending-distance order.
//
// ctx is consulted only for a parent trace span; cancellation is not
// checked (the static construction is one uninterruptible pass).
func staticCondense(ctx context.Context, records []mat.Vector, k int, r *rng.Source, opts Options, cfg searchConfig, tel *telemetry.Registry, tr *telemetry.Tracer) (*Condensation, [][]int, error) {
	if err := opts.validate(); err != nil {
		return nil, nil, err
	}
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	if k < 1 {
		return nil, nil, fmt.Errorf("core: indistinguishability level k = %d, must be ≥ 1", k)
	}
	if r == nil {
		return nil, nil, errors.New("core: nil random source")
	}
	if len(records) == 0 {
		return nil, nil, errors.New("core: no records to condense")
	}
	dim := len(records[0])
	for i, x := range records {
		if len(x) != dim {
			return nil, nil, fmt.Errorf("core: record %d has dimension %d, want %d", i, len(x), dim)
		}
		if !x.IsFinite() {
			return nil, nil, fmt.Errorf("core: record %d has non-finite values", i)
		}
	}

	met := newEngineMetrics(tel)
	met.withSearchBackend(tel, searchBackendLabel(cfg.Search))

	_, span := tr.Start(ctx, "static.condense")
	span.SetAttrInt("records", len(records))
	span.SetAttrInt("k", k)
	span.SetAttr("backend", searchBackendLabel(cfg.Search))
	defer span.End()

	// k = 1 needs no neighbour search: every record is its own group. This
	// is the paper's anchor case (static condensation at group size 1
	// equals the original data) and deserves the O(n) fast path.
	if k == 1 {
		groups := make([]*stats.Group, len(records))
		members := make([][]int, len(records))
		for i, x := range records {
			g := stats.NewGroup(dim)
			if err := g.Add(x); err != nil {
				return nil, nil, err
			}
			groups[i] = g
			members[i] = []int{i}
		}
		met.groupsFormed.Add(len(groups))
		cond := newCondensation(dim, k, opts, groups)
		cond.par = cfg.Parallelism
		cond.met = met
		return cond, members, nil
	}

	search, err := newNeighborSearcher(records, cfg)
	if err != nil {
		return nil, nil, err
	}

	var groups []*stats.Group
	var members [][]int
	var t0 time.Time
	loopSpan := childSpan(tr, span, "static.groups")
	for search.remaining() >= k {
		// Randomly sample a data point X from D, then pull X and its k−1
		// closest remaining records out of the alive set.
		pick := r.IntN(search.remaining())
		if met.enabled {
			t0 = time.Now()
		}
		group, err := search.takeGroup(pick, k)
		if err != nil {
			return nil, nil, err
		}
		if met.enabled {
			met.search.ObserveSince(t0)
			t0 = time.Now()
		}
		g := stats.NewGroup(dim)
		for _, idx := range group {
			if err := g.Add(records[idx]); err != nil {
				return nil, nil, fmt.Errorf("core: adding record to group: %w", err)
			}
		}
		if met.enabled {
			met.stats.ObserveSince(t0)
		}
		met.groupsFormed.Inc()
		groups = append(groups, g)
		members = append(members, group)
	}
	loopSpan.SetAttrInt("groups", len(groups))
	loopSpan.End()

	// Handle the final < k leftover records.
	if leftover := search.leftover(); len(leftover) > 0 {
		leftSpan := childSpan(tr, span, "static.leftover")
		leftSpan.SetAttrInt("records", len(leftover))
		defer leftSpan.End()
		switch opts.Leftover {
		case LeftoverNearestGroup:
			if len(groups) == 0 {
				// Fewer than k records in total: the best available option
				// is a single undersized group (the caller asked for an
				// indistinguishability level the data cannot support).
				g := stats.NewGroup(dim)
				for _, idx := range leftover {
					if err := g.Add(records[idx]); err != nil {
						return nil, nil, err
					}
				}
				groups = append(groups, g)
				members = append(members, leftover)
				break
			}
			// Group centroids are snapshotted once into a flat arena (they
			// are deliberately not refreshed as leftovers merge in), so
			// each leftover record is one kernel argmin sweep.
			centroids := make([]float64, 0, len(groups)*dim)
			for _, g := range groups {
				m, err := g.Mean()
				if err != nil {
					return nil, nil, err
				}
				centroids = append(centroids, m...)
			}
			for _, idx := range leftover {
				best, _ := kernel.ArgminFlat(records[idx], centroids)
				if err := groups[best].Add(records[idx]); err != nil {
					return nil, nil, err
				}
				members[best] = append(members[best], idx)
			}
			met.leftovers.Add(len(leftover))
		case LeftoverOwnGroup:
			g := stats.NewGroup(dim)
			for _, idx := range leftover {
				if err := g.Add(records[idx]); err != nil {
					return nil, nil, err
				}
			}
			groups = append(groups, g)
			members = append(members, leftover)
		}
	}

	// The sweep parallelism doubles as the synthesis parallelism of the
	// resulting condensation — one knob end to end.
	cond := newCondensation(dim, k, opts, groups)
	cond.par = cfg.Parallelism
	cond.met = met
	return cond, members, nil
}

// neighborSearcher abstracts the alive-set bookkeeping of the static
// construction: how many records remain, and extracting a sampled record
// together with its k−1 nearest survivors.
type neighborSearcher interface {
	// remaining returns the number of not-yet-grouped records.
	remaining() int
	// takeGroup removes the record at alive position pick plus its k−1
	// nearest surviving records and returns their record indices in
	// ascending-distance order (the seed record first).
	takeGroup(pick, k int) ([]int, error)
	// leftover removes and returns the record indices still alive, in
	// alive-set order.
	leftover() []int
}

// newNeighborSearcher builds the backend selected by cfg.
func newNeighborSearcher(records []mat.Vector, cfg searchConfig) (neighborSearcher, error) {
	// alive holds indices of records not yet assigned to a group. Removal
	// is swap-delete, so order is not preserved — grouping is randomized by
	// the sampling step anyway.
	alive := make([]int, len(records))
	for i := range alive {
		alive[i] = i
	}
	switch cfg.Search {
	case SearchKDTree:
		tree, err := knn.NewDynamicKDTree(records)
		if err != nil {
			return nil, fmt.Errorf("core: building kd-tree: %w", err)
		}
		pos := make([]int, len(records))
		for i := range pos {
			pos[i] = i
		}
		return &kdTreeSearcher{records: records, tree: tree, alive: alive, pos: pos}, nil
	default:
		dim := 0
		if len(records) > 0 {
			dim = len(records[0])
		}
		// The arena mirrors the alive set row for row: arena row i holds
		// the coordinates of record alive[i], so the kernel sweeps run
		// over contiguous memory instead of gathering through the records
		// slice. Swap-deletes move rows in lockstep with alive.
		arena := make([]float64, len(records)*dim)
		for i, x := range records {
			copy(arena[i*dim:(i+1)*dim], x)
		}
		return &scanSearcher{
			dim:      dim,
			arena:    arena,
			alive:    alive,
			fullSort: cfg.Search == SearchScanSort,
			workers:  cfg.workers(),
			dist:     make([]float64, len(records)),
			order:    make([]int, len(records)),
			chosen:   make([]int, 0, len(records)),
		}, nil
	}
}

// scanSearcher finds neighbours by sweeping distances over the alive set —
// in parallel chunks when the set is large — and then either quickselecting
// the k nearest (default) or fully sorting (the scan-sort reference). The
// dist/order/chosen scratch slices are allocated once and reused across
// groups.
type scanSearcher struct {
	dim      int
	arena    []float64 // flat row-major coordinates, row i = record alive[i]
	alive    []int
	fullSort bool
	workers  int

	dist   []float64 // distance from the current seed, by alive position
	order  []int     // alive positions, permuted during selection
	chosen []int     // alive positions picked for the current group
}

func (s *scanSearcher) remaining() int { return len(s.alive) }

func (s *scanSearcher) takeGroup(pick, k int) ([]int, error) {
	seed := s.arena[pick*s.dim : (pick+1)*s.dim]
	dist := s.dist[:len(s.alive)]
	sweepArena(dist, seed, s.arena, s.dim, s.workers)

	// Order alive positions by distance to the seed; position `pick` has
	// distance 0 and is selected first (ties broken by record index).
	order := s.order[:len(s.alive)]
	for i := range order {
		order[i] = i
	}
	if s.fullSort {
		sort.Slice(order, func(a, b int) bool { return dist[order[a]] < dist[order[b]] })
	} else {
		selectNearest(order, dist, s.alive, k)
	}

	group := make([]int, k)
	for i, pos := range order[:k] {
		group[i] = s.alive[pos]
	}

	// Delete the k chosen records from the alive set (descending positions
	// so swap-delete does not disturb pending positions).
	s.chosen = append(s.chosen[:0], order[:k]...)
	sort.Sort(sort.Reverse(sort.IntSlice(s.chosen)))
	for _, pos := range s.chosen {
		last := len(s.alive) - 1
		s.alive[pos] = s.alive[last]
		copy(s.arena[pos*s.dim:(pos+1)*s.dim], s.arena[last*s.dim:(last+1)*s.dim])
		s.alive = s.alive[:last]
	}
	return group, nil
}

func (s *scanSearcher) leftover() []int {
	out := append([]int(nil), s.alive...)
	s.alive = s.alive[:0]
	return out
}

// kdTreeSearcher answers neighbour queries from a DynamicKDTree with
// tombstone deletion. It mirrors the scan backends' alive-set bookkeeping
// (same swap-delete order) so that the seed sampled for a given rng draw
// is the same record under every backend.
type kdTreeSearcher struct {
	records []mat.Vector
	tree    *knn.DynamicKDTree
	alive   []int
	pos     []int // record index -> position in alive, -1 once grouped
}

func (s *kdTreeSearcher) remaining() int { return len(s.alive) }

func (s *kdTreeSearcher) takeGroup(pick, k int) ([]int, error) {
	seed := s.records[s.alive[pick]]
	neighbors, err := s.tree.NearestAlive(seed, k)
	if err != nil {
		return nil, fmt.Errorf("core: kd-tree query: %w", err)
	}
	group := make([]int, len(neighbors))
	for i, nb := range neighbors {
		group[i] = nb.Index
	}
	// Delete from the tree and from the alive set, highest alive position
	// first so swap-delete does not disturb pending positions.
	positions := make([]int, len(group))
	for i, idx := range group {
		if err := s.tree.Delete(idx); err != nil {
			return nil, fmt.Errorf("core: kd-tree delete: %w", err)
		}
		positions[i] = s.pos[idx]
	}
	sort.Sort(sort.Reverse(sort.IntSlice(positions)))
	for _, p := range positions {
		last := len(s.alive) - 1
		s.pos[s.alive[p]] = -1
		if p != last {
			moved := s.alive[last]
			s.alive[p] = moved
			s.pos[moved] = p
		}
		s.alive = s.alive[:last]
	}
	return group, nil
}

func (s *kdTreeSearcher) leftover() []int {
	out := append([]int(nil), s.alive...)
	s.alive = s.alive[:0]
	return out
}
