package core

import (
	"math"
	"testing"

	"condensation/internal/mat"
	"condensation/internal/rng"
)

func TestDynamicSteadyStateGroupSizes(t *testing.T) {
	base := clusteredRecords(31, 20, 20)
	stream := clusteredRecords(32, 100, 100)
	k := 5

	cond, err := Static(base, k, rng.New(33), Options{})
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := NewDynamic(cond, rng.New(34))
	if err != nil {
		t.Fatal(err)
	}
	if err := dyn.AddAll(stream); err != nil {
		t.Fatal(err)
	}
	snap := dyn.Condensation()
	if got, want := snap.TotalCount(), len(base)+len(stream); got != want {
		t.Errorf("TotalCount = %d, want %d", got, want)
	}
	for i, g := range snap.Groups() {
		if g.N() >= 2*k {
			t.Errorf("group %d has %d ≥ 2k records after maintenance", i, g.N())
		}
	}
}

func TestDynamicSplitsHappen(t *testing.T) {
	base := clusteredRecords(35, 10, 0)
	k := 5
	cond, err := Static(base, k, rng.New(36), Options{})
	if err != nil {
		t.Fatal(err)
	}
	before := cond.NumGroups()
	dyn, err := NewDynamic(cond, rng.New(37))
	if err != nil {
		t.Fatal(err)
	}
	if err := dyn.AddAll(clusteredRecords(38, 100, 0)); err != nil {
		t.Fatal(err)
	}
	if dyn.NumGroups() <= before {
		t.Errorf("NumGroups = %d after 100 additions, started at %d; expected splits", dyn.NumGroups(), before)
	}
}

func TestDynamicRoutesToNearestCluster(t *testing.T) {
	// Seed with both clusters, stream points near cluster B only, and
	// check the total mass near B grows accordingly.
	base := clusteredRecords(39, 20, 20)
	k := 4
	cond, err := Static(base, k, rng.New(40), Options{})
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := NewDynamic(cond, rng.New(41))
	if err != nil {
		t.Fatal(err)
	}
	streamB := clusteredRecords(42, 0, 60)
	if err := dyn.AddAll(streamB); err != nil {
		t.Fatal(err)
	}
	snap := dyn.Condensation()
	cents, err := snap.Centroids()
	if err != nil {
		t.Fatal(err)
	}
	var massNearB int
	for i, c := range cents {
		if c.Dist(mat.Vector{20, 20}) < 5 {
			massNearB += snap.Groups()[i].N()
		}
	}
	if massNearB < 70 { // 20 original + 60 streamed, allow boundary slack
		t.Errorf("mass near cluster B = %d, want ≈ 80", massNearB)
	}
}

func TestDynamicEmptyStart(t *testing.T) {
	dyn, err := NewDynamicEmpty(2, 3, Options{}, rng.New(43))
	if err != nil {
		t.Fatal(err)
	}
	if err := dyn.AddAll(clusteredRecords(44, 30, 0)); err != nil {
		t.Fatal(err)
	}
	if dyn.NumGroups() == 0 {
		t.Fatal("no groups formed")
	}
	if got := dyn.Condensation().TotalCount(); got != 30 {
		t.Errorf("TotalCount = %d, want 30", got)
	}
}

func TestDynamicAddErrors(t *testing.T) {
	dyn, err := NewDynamicEmpty(2, 2, Options{}, rng.New(45))
	if err != nil {
		t.Fatal(err)
	}
	if err := dyn.Add(mat.Vector{1}); err == nil {
		t.Error("wrong dimension accepted")
	}
	if err := dyn.Add(mat.Vector{1, math.Inf(1)}); err == nil {
		t.Error("non-finite record accepted")
	}
}

func TestDynamicConstructorErrors(t *testing.T) {
	if _, err := NewDynamic(nil, rng.New(1)); err == nil {
		t.Error("nil condensation accepted")
	}
	cond, err := Static(clusteredRecords(46, 5, 0), 2, rng.New(2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDynamic(cond, nil); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := NewDynamicEmpty(0, 2, Options{}, rng.New(1)); err == nil {
		t.Error("dim=0 accepted")
	}
	if _, err := NewDynamicEmpty(2, 0, Options{}, rng.New(1)); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewDynamicEmpty(2, 2, Options{}, nil); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := NewDynamicEmpty(2, 2, Options{SplitAxis: SplitAxis(9)}, rng.New(1)); err == nil {
		t.Error("bad options accepted")
	}
}

func TestDynamicAccessors(t *testing.T) {
	dyn, err := NewDynamicEmpty(3, 4, Options{}, rng.New(47))
	if err != nil {
		t.Fatal(err)
	}
	if dyn.K() != 4 || dyn.Dim() != 3 || dyn.NumGroups() != 0 {
		t.Errorf("K=%d Dim=%d NumGroups=%d", dyn.K(), dyn.Dim(), dyn.NumGroups())
	}
}

func TestDynamicCondensationSnapshotIsolated(t *testing.T) {
	dyn, err := NewDynamicEmpty(2, 2, Options{}, rng.New(48))
	if err != nil {
		t.Fatal(err)
	}
	if err := dyn.AddAll(clusteredRecords(49, 10, 0)); err != nil {
		t.Fatal(err)
	}
	snap := dyn.Condensation()
	before := snap.TotalCount()
	if err := dyn.AddAll(clusteredRecords(50, 10, 0)); err != nil {
		t.Fatal(err)
	}
	if snap.TotalCount() != before {
		t.Error("snapshot shares state with live condenser")
	}
}

func TestDynamicK1(t *testing.T) {
	// The paper notes dynamic condensation with group size 1 does not
	// reproduce the original data (splits at size 2 use the uniform
	// approximation); it must still preserve counts and stay at size 1.
	dyn, err := NewDynamicEmpty(2, 1, Options{}, rng.New(51))
	if err != nil {
		t.Fatal(err)
	}
	if err := dyn.AddAll(clusteredRecords(52, 20, 0)); err != nil {
		t.Fatal(err)
	}
	snap := dyn.Condensation()
	if snap.TotalCount() != 20 {
		t.Errorf("TotalCount = %d, want 20", snap.TotalCount())
	}
	for _, g := range snap.Groups() {
		if g.N() != 1 {
			t.Errorf("k=1 steady-state group of size %d", g.N())
		}
	}
}
