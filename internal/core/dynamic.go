package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"condensation/internal/mat"
	"condensation/internal/rng"
	"condensation/internal/stats"
	"condensation/internal/telemetry"
)

// searchSampleEvery is the sampling stride of the dynamic routing stage
// timer: one in every searchSampleEvery routed records is timed. Two
// time.Now() calls per record are measurable at high ingest rates, so the
// histogram trades completeness for throughput — the sampled latencies
// are representative (routing cost varies only with the group count,
// which moves slowly) and the counters remain exact.
const searchSampleEvery = 64

// Dynamic maintains condensed groups over an incremental stream of records
// (DynamicGroupMaintenance, Figure 2 of the paper). Each arriving record is
// added to the group with the nearest centroid; as soon as a group reaches
// 2k records its statistics are split into two groups of k records each
// (SplitGroupStatistics), so every group holds between k and 2k−1 records
// in steady state. Only aggregate statistics are retained — never the raw
// stream records.
//
// Records are routed through a pluggable nearest-centroid router
// (SetNeighborSearch): the paper's linear scan, or a maintained kd-index
// that stays exact under centroid drift and splits. Batches ingest
// fastest through AddBatch, which speculatively routes records in
// parallel and applies them sequentially — bit-identical to an Add loop.
type Dynamic struct {
	k    int
	dim  int
	opts Options
	r    *rng.Source

	groups    []*stats.Group
	centroids []mat.Vector // cached, updated in place, kept in sync with groups
	total     int          // cached running record count (Σ g.N()), updated on ingest
	splits    int          // group splits performed so far
	met       engineMetrics
	tel       *telemetry.Registry
	telLabels []string // label pairs applied to every engine series (sharding)
	tr        *telemetry.Tracer

	search  searchConfig     // routing backend + batch speculation parallelism
	router  centroidRouter   // maintained nearest-centroid structure
	routed  int              // records routed, for sampled stage timing
	scratch batchScratch     // reusable AddBatch buffers
	eig     mat.EigenScratch // reusable split eigensolve workspaces

	// Stable group identity and lineage, maintained in parallel with
	// groups/centroids: ids[i] is slot i's stable group id and births[i]
	// its birth annotation. Ids are allocated monotonically under idBase —
	// the per-shard partition of the id space a Sharded installs (see
	// groupIDShardShift) — so ids are unique engine-wide and never reused
	// after a split retires them. All of it is observe-only: ids never
	// influence routing, splits, or the rng stream, and they are not
	// serialized into checkpoints (a resumed engine renumbers from scratch).
	ids    []uint64
	births []groupBirth
	idBase uint64
	idSeq  uint64

	// shardIndex is this engine's position in a Sharded (0 standalone);
	// it stamps journal events and group diagnostics. jr is the lifecycle
	// journal; nil (the default) disables it at one nil check per site.
	shardIndex int
	jr         *telemetry.Journal

	// gen is the engine's mutation generation: a monotone counter advanced
	// before every state-changing apply and untouched by reads. The shards
	// of one Sharded share a single counter, so a generation value names a
	// unique prefix of the engine-wide mutation sequence — the property
	// that lets every read-side cache in the stack (the snapshot cache
	// below, the server's artifact memos, checkpoint ETags) use it as a
	// complete version key. lastMut is the counter value at this engine's
	// own most recent mutation, so a shard's snapshot cache invalidates
	// only when that shard changed, not when any sibling did.
	gen     *atomic.Uint64
	lastMut uint64

	// The generation-keyed snapshot cache: the group clones handed out by
	// the last Condensation call, valid while lastMut still equals snapGen.
	// Writers never touch it (they only advance the generation — copy on
	// write-invalidate, not copy on read); concurrent readers racing to
	// rebuild it under the caller's read lock serialize on snapMu. snapIDs
	// is the ids slice frozen with the clones, annotated onto snapshots.
	snapMu     sync.Mutex
	snapGen    uint64
	snapGroups []*stats.Group
	snapIDs    []uint64
}

// groupBirth is one group slot's observe-only birth annotation: the
// mutation generation it was created at, the id of the split parent it was
// born from (0 for founded or initial groups), and its centroid at birth —
// the reference point per-group drift diagnostics measure against.
type groupBirth struct {
	gen      uint64
	parent   uint64
	centroid mat.Vector
}

// groupIDShardShift partitions the 64-bit group-id space per shard: shard
// i allocates ids under base i<<48, so ids from different shards can never
// collide and the owning shard is recoverable as id>>48. 2^48 ids per
// shard outlasts any realistic stream; 2^16 shards outlasts any machine.
const groupIDShardShift = 48

// allocID hands out the next stable group id under this engine's base.
// Ids are 1-based within the shard so 0 stays the "no parent" sentinel.
func (d *Dynamic) allocID() uint64 {
	d.idSeq++
	return d.idBase | d.idSeq
}

// annotate registers identity and birth for a group slot just appended to
// d.groups: a fresh id, the current mutation generation, the given split
// parent (0 when founded), and a clone of the group's centroid.
func (d *Dynamic) annotate(parent uint64, centroid mat.Vector) uint64 {
	id := d.allocID()
	d.ids = append(d.ids, id)
	d.births = append(d.births, groupBirth{gen: d.lastMut, parent: parent, centroid: centroid.Clone()})
	return id
}

// rebaseIDs moves the engine's id space under base, renumbering any groups
// annotated before the base was known (the initial deal of ShardedFrom
// constructs each shard's Dynamic first). Called once at construction,
// before any record is ingested.
func (d *Dynamic) rebaseIDs(base uint64) {
	d.idBase = base
	d.idSeq = 0
	for i := range d.ids {
		d.idSeq++
		d.ids[i] = base | d.idSeq
	}
}

// SetJournal attaches a group-lifecycle journal: group foundings, splits
// (with parent→child lineage), router rebuilds, and speculation fallbacks
// are then recorded as structured events stamped with this engine's shard
// index and the triggering mutation generation. A nil journal (the
// default) disables recording at one nil check per event site. The journal
// is observe-only — it never touches the rng stream or the group moments,
// so condensed output is bit-identical with it on or off.
func (d *Dynamic) SetJournal(j *telemetry.Journal) { d.jr = j }

// bump advances the mutation generation at the start of a state change,
// so a generation-keyed cache can never mistake a pre-mutation snapshot
// for current state.
func (d *Dynamic) bump() { d.lastMut = d.gen.Add(1) }

// Generation returns the engine's mutation generation. It advances on
// every state-changing apply (Add, each applied record of AddBatch —
// group splits ride along) and is stable across pure reads, so an equal
// generation implies bit-identical condensed state. Reading it needs no
// lock: the counter is atomic.
func (d *Dynamic) Generation() uint64 { return d.gen.Load() }

// SetTelemetry attaches a metrics registry: Add and AddBatch then count
// stream records and split events, time the nearest-centroid routing (the
// dynamic engine's neighbour search — sampled one record in
// searchSampleEvery for Add, once per batch for AddBatch, so steady-state
// ingest pays no per-record clock reads) and the statistics splits, and
// keep a live group-count gauge. A nil registry disables recording.
// Telemetry is observe-only and never touches the split-axis rng.
func (d *Dynamic) SetTelemetry(reg *telemetry.Registry) {
	d.setTelemetryLabeled(reg)
}

// setTelemetryLabeled is SetTelemetry with extra label pairs stamped onto
// every engine series — the sharded engine passes shard="i" so per-shard
// rates stay separable. The labels are retained so a later routing-backend
// change re-registers the search series with them intact.
func (d *Dynamic) setTelemetryLabeled(reg *telemetry.Registry, labels ...string) {
	d.tel = reg
	d.telLabels = labels
	d.met = newEngineMetrics(reg, labels...)
	d.met.withSearchBackend(reg, d.router.label(), labels...)
	d.met.groups.Set(float64(len(d.groups)))
}

// SetTracer attaches a span tracer: Add records a sampled per-record
// ingest span (with a split child when the record triggers one), and
// AddBatch records a batch span with speculation/apply phase children —
// nested under the span in the caller's context, if any. A nil tracer
// (the default) disables tracing; a disabled or unsampled record costs one
// nil check and one atomic load, preserving the 0 allocs/record hot path.
// Tracing is observe-only and never touches the split-axis rng.
func (d *Dynamic) SetTracer(tr *telemetry.Tracer) { d.tr = tr }

// NewDynamic creates a dynamic condenser seeded from a static condensation
// of an initial database, per the paper's H = CreateCondensedGroups(k, D)
// initialization. The Condensation's groups are copied.
func NewDynamic(initial *Condensation, r *rng.Source) (*Dynamic, error) {
	if initial == nil {
		return nil, errors.New("core: nil initial condensation")
	}
	if r == nil {
		return nil, errors.New("core: nil random source")
	}
	d := &Dynamic{
		k:      initial.k,
		dim:    initial.dim,
		opts:   initial.opts,
		r:      r,
		groups: initial.Groups(),
		gen:    new(atomic.Uint64),
	}
	d.centroids = make([]mat.Vector, len(d.groups))
	for i, g := range d.groups {
		m, err := g.Mean()
		if err != nil {
			return nil, fmt.Errorf("core: initial group %d: %w", i, err)
		}
		d.centroids[i] = m
		d.total += g.N()
		d.annotate(0, m)
	}
	d.initRouter()
	return d, nil
}

// NewDynamicEmpty creates a dynamic condenser with no initial database.
// The first arriving record founds the first group. Until the first group
// reaches k records the structure cannot guarantee k-indistinguishability;
// the paper's setting always provides an initial database, so this
// constructor exists for pure-stream deployments and tests.
func NewDynamicEmpty(dim, k int, opts Options, r *rng.Source) (*Dynamic, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if dim < 1 {
		return nil, fmt.Errorf("core: dimension %d, must be ≥ 1", dim)
	}
	if k < 1 {
		return nil, fmt.Errorf("core: indistinguishability level k = %d, must be ≥ 1", k)
	}
	if r == nil {
		return nil, errors.New("core: nil random source")
	}
	d := &Dynamic{k: k, dim: dim, opts: opts, r: r, gen: new(atomic.Uint64)}
	d.initRouter()
	return d, nil
}

// K returns the indistinguishability level.
func (d *Dynamic) K() int { return d.k }

// Dim returns the attribute dimensionality.
func (d *Dynamic) Dim() int { return d.dim }

// NumGroups returns the current number of groups.
func (d *Dynamic) NumGroups() int { return len(d.groups) }

// TotalCount returns the number of records condensed so far. The count is
// maintained incrementally on ingest (splits conserve it), so frequent
// health and stats reads never scan the group list under the serving lock.
func (d *Dynamic) TotalCount() int { return d.total }

// Splits returns the number of group splits performed so far.
func (d *Dynamic) Splits() int { return d.splits }

// NumShards returns 1: a Dynamic is a single shard.
func (d *Dynamic) NumShards() int { return 1 }

// Shard snapshots shard i; only Shard(0) exists and equals Condensation().
func (d *Dynamic) Shard(i int) *Condensation {
	if i != 0 {
		panic(fmt.Sprintf("core: shard %d out of range on a single-shard engine", i))
	}
	return d.Condensation()
}

// ShardCounts returns the live counts of shard i; only shard 0 exists.
func (d *Dynamic) ShardCounts(i int) (records, groups, splits int) {
	if i != 0 {
		panic(fmt.Sprintf("core: shard %d out of range on a single-shard engine", i))
	}
	return d.total, len(d.groups), d.splits
}

// Synchronized reports false: Dynamic performs no locking of its own, so
// callers sharing it across goroutines must serialize access themselves.
func (d *Dynamic) Synchronized() bool { return false }

// validateRecord rejects records the engine cannot condense.
func (d *Dynamic) validateRecord(x mat.Vector) error {
	if len(x) != d.dim {
		return fmt.Errorf("core: stream record dimension %d, want %d", len(x), d.dim)
	}
	if !x.IsFinite() {
		return errors.New("core: stream record has non-finite values")
	}
	return nil
}

// Add routes one stream record to the group with the nearest centroid and
// splits that group if it reaches 2k records.
func (d *Dynamic) Add(x mat.Vector) error {
	sp := d.tr.StartChild(nil, "dynamic.add")
	if sp == nil {
		return d.add(x, nil)
	}
	err := d.add(x, sp)
	if err != nil {
		sp.SetAttr("error", err.Error())
	}
	sp.End()
	return err
}

// add is Add's body, with sp the sampled per-record span (usually nil).
func (d *Dynamic) add(x mat.Vector, sp *telemetry.Span) error {
	if err := d.validateRecord(x); err != nil {
		return err
	}
	if len(d.groups) == 0 {
		return d.found(x)
	}
	best := d.route(x)
	sp.SetAttrInt("group", best)
	if err := d.ingest(best, x, sp); err != nil {
		return err
	}
	d.met.streamRecords.Inc()
	return nil
}

// found admits the very first stream record of an empty condenser: it
// founds group 0.
func (d *Dynamic) found(x mat.Vector) error {
	d.bump()
	g := stats.NewGroup(d.dim)
	if err := g.Add(x); err != nil {
		return err
	}
	d.groups = append(d.groups, g)
	m, err := g.Mean()
	if err != nil {
		return err
	}
	d.centroids = append(d.centroids, m)
	id := d.annotate(0, m)
	d.router.add(len(d.groups) - 1)
	d.total++
	d.met.streamRecords.Inc()
	d.met.groupsFormed.Inc()
	d.met.groups.Set(float64(len(d.groups)))
	if d.jr != nil {
		d.jr.Record(telemetry.JournalEvent{
			Type:       telemetry.EventGroupCreated,
			Shard:      d.shardIndex,
			Generation: d.lastMut,
			Group:      id,
			Detail:     "first stream record founded a group",
		})
	}
	return nil
}

// route finds the nearest centroid in H to x through the configured
// router, timing one record in searchSampleEvery.
func (d *Dynamic) route(x mat.Vector) int {
	d.routed++
	if d.met.enabled && d.routed%searchSampleEvery == 1 {
		t0 := time.Now()
		best, _ := d.router.nearest(x)
		d.met.search.ObserveSince(t0)
		return best
	}
	best, _ := d.router.nearest(x)
	return best
}

// ingest folds x into group best, refreshes the group's cached centroid in
// place (no allocation), keeps the router in sync, and performs the
// paper's split once the group reaches 2k records: delete M from H, add
// M1 and M2 to H. sp, when non-nil, is the enclosing trace span (the
// sampled per-record span for Add, the apply-phase span for AddBatch); a
// split then records a child span under it.
func (d *Dynamic) ingest(best int, x mat.Vector, sp *telemetry.Span) error {
	d.bump()
	g := d.groups[best]
	if err := g.Add(x); err != nil {
		return err
	}
	d.total++
	if err := g.MeanInto(d.centroids[best]); err != nil {
		return err
	}
	d.router.update(best)

	if g.N() == 2*d.k {
		var t0 time.Time
		if d.met.enabled {
			t0 = time.Now()
		}
		splitSpan := childSpan(d.tr, sp, "dynamic.split")
		splitSpan.SetAttrInt("group", best)
		m1, m2, err := splitGroupWith(g, d.k, d.opts.SplitAxis, d.r, &d.eig)
		if err != nil {
			return fmt.Errorf("core: splitting group %d: %w", best, err)
		}
		parentID := d.ids[best]
		d.groups[best] = m1
		if err := m1.MeanInto(d.centroids[best]); err != nil {
			return err
		}
		d.router.update(best)
		c2, err := m2.Mean()
		if err != nil {
			return err
		}
		d.groups = append(d.groups, m2)
		d.centroids = append(d.centroids, c2)
		// The parent id retires with the split; both halves are new groups
		// with fresh ids and lineage back to the parent.
		id1 := d.allocID()
		d.ids[best] = id1
		d.births[best] = groupBirth{gen: d.lastMut, parent: parentID, centroid: d.centroids[best].Clone()}
		id2 := d.annotate(parentID, c2)
		d.router.add(len(d.groups) - 1)
		d.maybePromote()
		if d.jr != nil {
			d.jr.Record(telemetry.JournalEvent{
				Type:       telemetry.EventSplit,
				Shard:      d.shardIndex,
				Generation: d.lastMut,
				Group:      parentID,
				Parent:     parentID,
				Children:   []uint64{id1, id2},
				Detail:     fmt.Sprintf("group reached %d records (2k) and split into %d + %d", 2*d.k, m1.N(), m2.N()),
			})
		}
		splitSpan.End()
		if d.met.enabled {
			d.met.split.ObserveSince(t0)
		}
		d.splits++
		d.met.splitEvents.Inc()
		d.met.groupsFormed.Inc()
		d.met.groups.Set(float64(len(d.groups)))
	}
	return nil
}

// AddAll streams a batch of records through Add. For large batches,
// AddBatch produces the identical condensation faster.
func (d *Dynamic) AddAll(records []mat.Vector) error {
	return d.AddAllContext(context.Background(), records)
}

// AddAllContext is AddAll with cancellation: between records it checks the
// context and stops with the context's error once it is done. Records
// admitted before cancellation stay condensed — the structure remains
// valid, the remainder of the batch is simply not ingested.
func (d *Dynamic) AddAllContext(ctx context.Context, records []mat.Vector) error {
	for i, x := range records {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("core: stream cancelled at record %d: %w", i, err)
		}
		if err := d.Add(x); err != nil {
			return fmt.Errorf("core: stream record %d: %w", i, err)
		}
	}
	return nil
}

// Condensation snapshots the current groups as an immutable Condensation
// that can be synthesized from. The group copies are cached per mutation
// generation: a snapshot taken with no intervening writes reuses the
// previous call's clones instead of re-copying O(G·d²) state, so repeated
// reads of unchanged state cost one slice header. The cached groups are
// never mutated afterwards — stats.Group read methods are pure and
// Condensation.Groups() clones on access — so sharing them across
// snapshots is safe; each call still gets a fresh Condensation header, so
// per-caller settings (parallelism, telemetry, tracer) never leak between
// snapshots.
func (d *Dynamic) Condensation() *Condensation {
	d.snapMu.Lock()
	if d.snapGroups == nil || d.snapGen != d.lastMut {
		groups := make([]*stats.Group, len(d.groups))
		for i, g := range d.groups {
			groups[i] = g.Clone()
		}
		d.snapGroups = groups
		d.snapIDs = append([]uint64(nil), d.ids...)
		d.snapGen = d.lastMut
		d.met.snapMisses.Inc()
	} else {
		d.met.snapHits.Inc()
	}
	groups := d.snapGroups
	ids := d.snapIDs
	d.snapMu.Unlock()
	cond := newCondensation(d.dim, d.k, d.opts, groups)
	cond.groupIDs = ids
	cond.met = d.met
	cond.tr = d.tr
	return cond
}

// ShardGroupSizes appends the live per-group record counts of shard i to
// buf (resliced to zero length first) and returns it; only shard 0 exists.
// Unlike Shard, this reads the retained counts directly — no group
// cloning — so size-only consumers (per-shard stats, k-invariant checks)
// stay O(G) ints under the serving lock.
func (d *Dynamic) ShardGroupSizes(i int, buf []int) []int {
	if i != 0 {
		panic(fmt.Sprintf("core: shard %d out of range on a single-shard engine", i))
	}
	buf = buf[:0]
	for _, g := range d.groups {
		buf = append(buf, g.N())
	}
	return buf
}
