package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"condensation/internal/mat"
	"condensation/internal/rng"
	"condensation/internal/stats"
	"condensation/internal/telemetry"
)

// Dynamic maintains condensed groups over an incremental stream of records
// (DynamicGroupMaintenance, Figure 2 of the paper). Each arriving record is
// added to the group with the nearest centroid; as soon as a group reaches
// 2k records its statistics are split into two groups of k records each
// (SplitGroupStatistics), so every group holds between k and 2k−1 records
// in steady state. Only aggregate statistics are retained — never the raw
// stream records.
type Dynamic struct {
	k    int
	dim  int
	opts Options
	r    *rng.Source

	groups    []*stats.Group
	centroids []mat.Vector // cached, kept in sync with groups
	met       engineMetrics
	tel       *telemetry.Registry
}

// SetTelemetry attaches a metrics registry: Add then counts stream
// records and split events, times the nearest-centroid routing (the
// dynamic engine's neighbour search) and the statistics splits, and keeps
// a live group-count gauge. A nil registry disables recording. Telemetry
// is observe-only and never touches the split-axis rng.
func (d *Dynamic) SetTelemetry(reg *telemetry.Registry) {
	d.tel = reg
	d.met = newEngineMetrics(reg)
	d.met.withSearchBackend(reg, "centroid-scan")
	d.met.groups.Set(float64(len(d.groups)))
}

// NewDynamic creates a dynamic condenser seeded from a static condensation
// of an initial database, per the paper's H = CreateCondensedGroups(k, D)
// initialization. The Condensation's groups are copied.
func NewDynamic(initial *Condensation, r *rng.Source) (*Dynamic, error) {
	if initial == nil {
		return nil, errors.New("core: nil initial condensation")
	}
	if r == nil {
		return nil, errors.New("core: nil random source")
	}
	d := &Dynamic{
		k:      initial.k,
		dim:    initial.dim,
		opts:   initial.opts,
		r:      r,
		groups: initial.Groups(),
	}
	d.centroids = make([]mat.Vector, len(d.groups))
	for i, g := range d.groups {
		m, err := g.Mean()
		if err != nil {
			return nil, fmt.Errorf("core: initial group %d: %w", i, err)
		}
		d.centroids[i] = m
	}
	return d, nil
}

// NewDynamicEmpty creates a dynamic condenser with no initial database.
// The first arriving record founds the first group. Until the first group
// reaches k records the structure cannot guarantee k-indistinguishability;
// the paper's setting always provides an initial database, so this
// constructor exists for pure-stream deployments and tests.
func NewDynamicEmpty(dim, k int, opts Options, r *rng.Source) (*Dynamic, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if dim < 1 {
		return nil, fmt.Errorf("core: dimension %d, must be ≥ 1", dim)
	}
	if k < 1 {
		return nil, fmt.Errorf("core: indistinguishability level k = %d, must be ≥ 1", k)
	}
	if r == nil {
		return nil, errors.New("core: nil random source")
	}
	return &Dynamic{k: k, dim: dim, opts: opts, r: r}, nil
}

// K returns the indistinguishability level.
func (d *Dynamic) K() int { return d.k }

// Dim returns the attribute dimensionality.
func (d *Dynamic) Dim() int { return d.dim }

// NumGroups returns the current number of groups.
func (d *Dynamic) NumGroups() int { return len(d.groups) }

// TotalCount returns the number of records condensed so far, summed over
// the live group statistics (no snapshot copy).
func (d *Dynamic) TotalCount() int {
	var n int
	for _, g := range d.groups {
		n += g.N()
	}
	return n
}

// Add routes one stream record to the group with the nearest centroid and
// splits that group if it reaches 2k records.
func (d *Dynamic) Add(x mat.Vector) error {
	if len(x) != d.dim {
		return fmt.Errorf("core: stream record dimension %d, want %d", len(x), d.dim)
	}
	if !x.IsFinite() {
		return errors.New("core: stream record has non-finite values")
	}
	if len(d.groups) == 0 {
		g := stats.NewGroup(d.dim)
		if err := g.Add(x); err != nil {
			return err
		}
		d.groups = append(d.groups, g)
		m, err := g.Mean()
		if err != nil {
			return err
		}
		d.centroids = append(d.centroids, m)
		d.met.streamRecords.Inc()
		d.met.groupsFormed.Inc()
		d.met.groups.Set(1)
		return nil
	}

	// Find the nearest centroid in H to X.
	var t0 time.Time
	if d.met.enabled {
		t0 = time.Now()
	}
	best, bestD := 0, x.DistSq(d.centroids[0])
	for i := 1; i < len(d.centroids); i++ {
		if dist := x.DistSq(d.centroids[i]); dist < bestD {
			best, bestD = i, dist
		}
	}
	if d.met.enabled {
		d.met.search.ObserveSince(t0)
	}
	g := d.groups[best]
	if err := g.Add(x); err != nil {
		return err
	}
	m, err := g.Mean()
	if err != nil {
		return err
	}
	d.centroids[best] = m

	if g.N() == 2*d.k {
		if d.met.enabled {
			t0 = time.Now()
		}
		m1, m2, err := SplitGroup(g, d.k, d.opts.SplitAxis, d.r)
		if err != nil {
			return fmt.Errorf("core: splitting group %d: %w", best, err)
		}
		c1, err := m1.Mean()
		if err != nil {
			return err
		}
		c2, err := m2.Mean()
		if err != nil {
			return err
		}
		// Delete M from H; add M1 and M2 to H.
		d.groups[best], d.centroids[best] = m1, c1
		d.groups = append(d.groups, m2)
		d.centroids = append(d.centroids, c2)
		if d.met.enabled {
			d.met.split.ObserveSince(t0)
		}
		d.met.splitEvents.Inc()
		d.met.groupsFormed.Inc()
		d.met.groups.Set(float64(len(d.groups)))
	}
	d.met.streamRecords.Inc()
	return nil
}

// AddAll streams a batch of records through Add.
func (d *Dynamic) AddAll(records []mat.Vector) error {
	return d.AddAllContext(context.Background(), records)
}

// AddAllContext is AddAll with cancellation: between records it checks the
// context and stops with the context's error once it is done. Records
// admitted before cancellation stay condensed — the structure remains
// valid, the remainder of the batch is simply not ingested.
func (d *Dynamic) AddAllContext(ctx context.Context, records []mat.Vector) error {
	for i, x := range records {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("core: stream cancelled at record %d: %w", i, err)
		}
		if err := d.Add(x); err != nil {
			return fmt.Errorf("core: stream record %d: %w", i, err)
		}
	}
	return nil
}

// Condensation snapshots the current groups as an immutable Condensation
// that can be synthesized from. The groups are copied.
func (d *Dynamic) Condensation() *Condensation {
	groups := make([]*stats.Group, len(d.groups))
	for i, g := range d.groups {
		groups[i] = g.Clone()
	}
	cond := newCondensation(d.dim, d.k, d.opts, groups)
	cond.met = d.met
	return cond
}
