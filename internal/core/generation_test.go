package core

import (
	"bytes"
	"sync"
	"testing"

	"condensation/internal/mat"
	"condensation/internal/rng"
	"condensation/internal/stats"
	"condensation/internal/telemetry"
)

// condBytes serializes a condensation for byte-level comparison. A
// bytes.Buffer sink cannot fail, so an error here means the groups
// themselves are corrupt — panic so reader goroutines fail loudly too.
func condBytes(c *Condensation) []byte {
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func TestGenerationMonotoneAndReadStable(t *testing.T) {
	c, err := NewCondenser(5, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	d, err := c.Dynamic(2)
	if err != nil {
		t.Fatal(err)
	}
	if g := d.Generation(); g != 0 {
		t.Fatalf("fresh engine generation %d, want 0", g)
	}

	records := clusteredRecords(41, 60, 60)
	for i, x := range records[:20] {
		before := d.Generation()
		if err := d.Add(x); err != nil {
			t.Fatal(err)
		}
		if after := d.Generation(); after != before+1 {
			t.Fatalf("record %d: generation %d -> %d, want +1 per applied record", i, before, after)
		}
	}

	// AddBatch advances the generation once per applied record; splits
	// ride along inside the apply and add no extra steps, so the counter
	// stays comparable across ingest paths.
	before := d.Generation()
	if err := d.AddBatch(records[20:]); err != nil {
		t.Fatal(err)
	}
	if got, want := d.Generation(), before+uint64(len(records)-20); got != want {
		t.Fatalf("generation after batch %d, want %d", got, want)
	}
	if d.Splits() == 0 {
		t.Fatal("stream produced no splits; the monotonicity claim needs split coverage")
	}

	// Pure reads never move the generation.
	g := d.Generation()
	_ = d.Condensation()
	_ = d.Condensation()
	_ = d.Shard(0)
	_ = d.ShardGroupSizes(0, nil)
	_, _, _ = d.ShardCounts(0)
	_ = d.NumGroups()
	_ = d.TotalCount()
	if got := d.Generation(); got != g {
		t.Errorf("pure reads moved the generation %d -> %d", g, got)
	}
}

func TestGenerationSharedAcrossShards(t *testing.T) {
	c, err := NewCondenser(5, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	s, err := c.Sharded(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g := s.Generation(); g != 0 {
		t.Fatalf("fresh engine generation %d, want 0", g)
	}
	records := clusteredRecords(43, 80, 80)
	if err := s.AddBatch(records); err != nil {
		t.Fatal(err)
	}
	// All shards advance one shared counter: the composite generation is
	// the engine-wide applied-record count, not a per-shard sum that
	// could alias distinct states.
	if got, want := s.Generation(), uint64(len(records)); got != want {
		t.Fatalf("generation %d after %d records across shards, want %d", got, len(records), want)
	}
	g := s.Generation()
	_ = s.Condensation()
	for i := 0; i < s.NumShards(); i++ {
		_ = s.Shard(i)
		_ = s.ShardGroupSizes(i, nil)
		_, _, _ = s.ShardCounts(i)
	}
	if got := s.Generation(); got != g {
		t.Errorf("pure reads moved the generation %d -> %d", g, got)
	}
}

func TestSnapshotCacheReuseAndInvalidation(t *testing.T) {
	reg := telemetry.NewRegistry()
	c, err := NewCondenser(5, WithSeed(9), WithTelemetry(reg))
	if err != nil {
		t.Fatal(err)
	}
	d, err := c.Dynamic(2)
	if err != nil {
		t.Fatal(err)
	}
	records := clusteredRecords(45, 40, 40)
	if err := d.AddBatch(records); err != nil {
		t.Fatal(err)
	}

	hits := reg.Counter(metricReadCacheHits, "cache", "snapshot")
	misses := reg.Counter(metricReadCacheMisses, "cache", "snapshot")
	h0, m0 := hits.Value(), misses.Value()

	c1 := d.Condensation()
	c2 := d.Condensation()
	if c1 == c2 {
		t.Fatal("snapshots must get fresh Condensation headers")
	}
	if len(c1.groups) == 0 {
		t.Fatal("no groups condensed")
	}
	if c1.groups[0] != c2.groups[0] {
		t.Error("unchanged state recloned its groups — the snapshot cache missed")
	}
	if misses.Value() != m0+1 || hits.Value() != h0+1 {
		t.Errorf("counters after miss+hit: hits %d->%d misses %d->%d",
			h0, hits.Value(), m0, misses.Value())
	}

	// The cached snapshot is immutable: later writes must not reach into
	// bytes already served, and mutating a Groups() clone must not either.
	b1 := condBytes(c1)
	c1.Groups()[0].Add(mat.Vector{1, 1})
	if err := d.Add(mat.Vector{0.5, 0.5}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, condBytes(c1)) {
		t.Error("earlier snapshot changed after a write — cached groups are shared with live state")
	}

	// The write invalidated the cache: a new snapshot sees fresh clones
	// and the new record.
	c3 := d.Condensation()
	if c3.groups[0] == c1.groups[0] {
		t.Error("write did not invalidate the snapshot cache")
	}
	if c3.TotalCount() != c1.TotalCount()+1 {
		t.Errorf("post-write snapshot has %d records, want %d", c3.TotalCount(), c1.TotalCount()+1)
	}
}

func TestShardGroupSizes(t *testing.T) {
	c, err := NewCondenser(4, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	s, err := c.Sharded(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	records := clusteredRecords(47, 50, 50)
	if err := s.AddBatch(records); err != nil {
		t.Fatal(err)
	}
	var total, groups int
	buf := make([]int, 0, 16)
	for i := 0; i < s.NumShards(); i++ {
		buf = s.ShardGroupSizes(i, buf)
		r, g, _ := s.ShardCounts(i)
		if len(buf) != g {
			t.Errorf("shard %d: %d sizes, want %d groups", i, len(buf), g)
		}
		var sum int
		for _, n := range buf {
			sum += n
		}
		if sum != r {
			t.Errorf("shard %d: sizes sum to %d, want %d records", i, sum, r)
		}
		total += sum
		groups += len(buf)
	}
	if total != s.TotalCount() || groups != s.NumGroups() {
		t.Errorf("sizes cover %d records/%d groups, engine has %d/%d",
			total, groups, s.TotalCount(), s.NumGroups())
	}
}

// rebuildFromScratch materializes the merged condensation bypassing the
// snapshot cache entirely, cloning every group under its shard's read
// lock — the pre-cache read path, kept as the coherence test's oracle.
func rebuildFromScratch(s *Sharded) *Condensation {
	var groups []*stats.Group
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, g := range sh.dyn.groups {
			groups = append(groups, g.Clone())
		}
		sh.mu.RUnlock()
	}
	return newCondensation(s.dim, s.k, s.opts, groups)
}

// TestSnapshotCacheCoherentUnderWrites tortures the sharded read path
// with concurrent writers and readers (run under -race in CI): whenever
// the generation is stable across a read window, the cached snapshot
// must be byte-identical to a from-scratch rebuild at that generation;
// after every round's quiescent point it must be, unconditionally.
func TestSnapshotCacheCoherentUnderWrites(t *testing.T) {
	c, err := NewCondenser(4, WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	s, err := c.Sharded(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	batch := func(seed uint64, n int) []mat.Vector {
		r := rng.New(seed)
		out := make([]mat.Vector, n)
		for i := range out {
			out[i] = mat.Vector{r.Norm(), r.Norm(), r.Norm()}
		}
		return out
	}
	if err := s.AddBatch(batch(1, 200)); err != nil {
		t.Fatal(err)
	}

	rounds := 30
	if testing.Short() {
		rounds = 6
	}
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		wg.Add(1)
		go func(round int) {
			defer wg.Done()
			if err := s.AddBatch(batch(uint64(100+round), 32)); err != nil {
				t.Error(err)
			}
		}(round)
		for w := 0; w < 3; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 5; i++ {
					g1 := s.Generation()
					cached := condBytes(s.Condensation())
					scratch := condBytes(rebuildFromScratch(s))
					// Only a stable window proves the pair describes one
					// state; an unstable read still exercises the cache
					// under the race detector.
					if s.Generation() == g1 && !bytes.Equal(cached, scratch) {
						t.Errorf("round %d: cached snapshot at generation %d differs from from-scratch rebuild", round, g1)
						return
					}
				}
			}()
		}
		wg.Wait()

		// Quiescent: cached and from-scratch state must match exactly,
		// and reading both must not move the generation.
		g := s.Generation()
		if !bytes.Equal(condBytes(s.Condensation()), condBytes(rebuildFromScratch(s))) {
			t.Fatalf("round %d: quiescent cached snapshot differs from from-scratch rebuild", round)
		}
		if s.Generation() != g {
			t.Fatalf("round %d: reads moved the generation", round)
		}
	}
}
