package condensation

import (
	"fmt"
	"testing"

	"condensation/internal/core"
)

// BenchmarkShardedIngest measures the sharded engine's steady-state batch
// ingest at 1, 2, 4, and 8 shards against the same pinned-G protocol as
// BenchmarkDynamicAddAll (PR 4's BENCH_PR4 baseline): correlated rank-3
// factor stream, k = 25, G = 800 total groups held pinned by off-the-clock
// re-seeds, 1024-record batches, ns/op per record. Each shard routes and
// applies its slice of a batch concurrently under its own lock, so on an
// N-core runner throughput scales with min(shards, cores); all shard
// counts produce valid condensations (per-shard k ≤ n ≤ 2k−1), and each
// shard count is individually reproducible bit for bit
// (TestShardedMergedSnapshotDeterministic).
func BenchmarkShardedIngest(b *testing.B) {
	const dim, k, batchSize = 8, 25, 1024
	const G = 800
	full := benchStreamCorr(14, G*k+1<<16, dim)
	pool := full[G*k:]
	base := benchBase(b, full, G, k)
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("corr/G=%d/shards=%d", G, shards), func(b *testing.B) {
			c, err := core.NewCondenser(k, core.WithSeed(13))
			if err != nil {
				b.Fatal(err)
			}
			fresh := func() *core.Sharded {
				s, err := c.ShardedFrom(base, shards)
				if err != nil {
					b.Fatal(err)
				}
				return s
			}
			eng := fresh()
			fed := 0
			b.ReportAllocs()
			b.ResetTimer()
			for done := 0; done < b.N; {
				if fed >= benchResetEvery {
					b.StopTimer()
					eng = fresh()
					fed = 0
					b.StartTimer()
				}
				n := batchSize
				if b.N-done < n {
					n = b.N - done
				}
				lo := done % (len(pool) - batchSize)
				if err := eng.AddBatch(pool[lo : lo+n]); err != nil {
					b.Fatal(err)
				}
				done += n
				fed += n
			}
		})
	}
}
