// Package condensation's root benchmark suite regenerates every table and
// figure of the paper's evaluation as Go benchmarks: one Benchmark per
// figure panel (5a–8b), one per ablation and baseline study from
// DESIGN.md, and micro-benchmarks for the core operations. Each figure
// bench logs the full table (visible with `go test -bench . -v`) and
// reports the headline series values through b.ReportMetric so regressions
// in *result quality*, not just speed, show up in benchmark diffs.
package condensation

import (
	"runtime"
	"strconv"
	"strings"
	"testing"

	"condensation/internal/core"
	"condensation/internal/datagen"
	"condensation/internal/experiments"
	"condensation/internal/knn"
	"condensation/internal/mat"
	"condensation/internal/rng"
	"condensation/internal/stats"
)

// benchConfig is the shared figure configuration: the paper's x-axis range
// at reduced repetition count to keep bench runtime reasonable.
func benchConfig() experiments.Config {
	return experiments.Config{
		Seed:        7,
		GroupSizes:  []int{2, 5, 10, 25, 50},
		Repetitions: 1,
	}
}

// runFigureBench regenerates one panel per iteration and reports the
// series at the largest group size.
func runFigureBench(b *testing.B, id string) {
	b.Helper()
	var table *experiments.Table
	for i := 0; i < b.N; i++ {
		var err error
		table, err = experiments.RunFigure(id, benchConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, table)
	reportLastRow(b, table)
}

// logTable renders a table into the benchmark log.
func logTable(b *testing.B, t *experiments.Table) {
	b.Helper()
	var sb strings.Builder
	if err := t.Render(&sb); err != nil {
		b.Fatal(err)
	}
	b.Logf("\n%s", sb.String())
}

// reportLastRow publishes the numeric cells of the final (largest-k) row
// as benchmark metrics named after the columns.
func reportLastRow(b *testing.B, t *experiments.Table) {
	b.Helper()
	if len(t.Rows) == 0 {
		return
	}
	last := t.Rows[len(t.Rows)-1]
	for i, col := range t.Columns {
		v, err := strconv.ParseFloat(last[i], 64)
		if err != nil {
			continue // non-numeric cell
		}
		b.ReportMetric(v, col)
	}
}

// Figure 5: Ionosphere.

func BenchmarkFig5aIonosphereAccuracy(b *testing.B) { runFigureBench(b, "5a") }
func BenchmarkFig5bIonosphereCompat(b *testing.B)   { runFigureBench(b, "5b") }

// Figure 6: Ecoli.

func BenchmarkFig6aEcoliAccuracy(b *testing.B) { runFigureBench(b, "6a") }
func BenchmarkFig6bEcoliCompat(b *testing.B)   { runFigureBench(b, "6b") }

// Figure 7: Pima Indian.

func BenchmarkFig7aPimaAccuracy(b *testing.B) { runFigureBench(b, "7a") }
func BenchmarkFig7bPimaCompat(b *testing.B)   { runFigureBench(b, "7b") }

// Figure 8: Abalone.

func BenchmarkFig8aAbaloneAccuracy(b *testing.B) { runFigureBench(b, "8a") }
func BenchmarkFig8bAbaloneCompat(b *testing.B)   { runFigureBench(b, "8b") }

// Ablations (DESIGN.md §3): design choices the paper motivates.

func BenchmarkAblationSplitAxis(b *testing.B) {
	ds := datagen.Pima(7)
	var table *experiments.Table
	for i := 0; i < b.N; i++ {
		var err error
		table, err = experiments.SplitAxisAblation(ds, benchConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, table)
	reportLastRow(b, table)
}

func BenchmarkAblationSynthesisDistribution(b *testing.B) {
	ds := datagen.Pima(7)
	var table *experiments.Table
	for i := 0; i < b.N; i++ {
		var err error
		table, err = experiments.SynthesisAblation(ds, benchConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, table)
	reportLastRow(b, table)
}

func BenchmarkAblationLeftover(b *testing.B) {
	ds := datagen.Ecoli(7)
	cfg := benchConfig()
	cfg.GroupSizes = []int{7, 13, 23} // sizes that leave leftovers
	var table *experiments.Table
	for i := 0; i < b.N; i++ {
		var err error
		table, err = experiments.LeftoverAblation(ds, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, table)
	reportLastRow(b, table)
}

// Baselines: the approaches the paper positions itself against.

func BenchmarkBaselinePerturbation(b *testing.B) {
	ds := datagen.Pima(7)
	var table *experiments.Table
	for i := 0; i < b.N; i++ {
		var err error
		table, err = experiments.PerturbationComparison(ds, []float64{0.25, 0.5, 1, 2}, benchConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, table)
}

func BenchmarkBaselineKAnonymity(b *testing.B) {
	ds := datagen.Pima(7)
	var table *experiments.Table
	for i := 0; i < b.N; i++ {
		var err error
		table, err = experiments.KAnonymityComparison(ds, benchConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, table)
	reportLastRow(b, table)
}

func BenchmarkPrivacyAttack(b *testing.B) {
	ds := datagen.Ecoli(7)
	var table *experiments.Table
	for i := 0; i < b.N; i++ {
		var err error
		table, err = experiments.AttackStudy(ds, benchConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, table)
	reportLastRow(b, table)
}

func BenchmarkClusteringUtility(b *testing.B) {
	ds := datagen.Ecoli(7)
	var table *experiments.Table
	for i := 0; i < b.N; i++ {
		var err error
		table, err = experiments.ClusteringStudy(ds, 4, benchConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, table)
	reportLastRow(b, table)
}

// Micro-benchmarks: throughput of the core operations.

func BenchmarkCoreStaticCondense(b *testing.B) {
	ds := datagen.Pima(7)
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Static(ds.X, 25, r, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoreStaticSearch compares the neighbour-search backends behind
// the Condenser facade on identical inputs; the sub-benchmark names make
// the scan-sort → quickselect/kd-tree speedup visible in benchstat diffs.
func BenchmarkCoreStaticSearch(b *testing.B) {
	ds := datagen.Pima(7)
	for _, search := range []core.NeighborSearch{
		core.SearchScanSort, core.SearchQuickselect, core.SearchKDTree,
	} {
		b.Run(search.String(), func(b *testing.B) {
			c, err := core.NewCondenser(25, core.WithSeed(1), core.WithNeighborSearch(search))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Static(ds.X); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCoreDynamicAdd(b *testing.B) {
	ds := datagen.Abalone(7)
	joint := make([]mat.Vector, len(ds.X))
	for i, x := range ds.X {
		joint[i] = x
	}
	base, err := core.Static(joint[:500], 25, rng.New(2), core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	dyn, err := core.NewDynamic(base, rng.New(3))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dyn.Add(joint[500+i%(len(joint)-500)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoreSynthesize(b *testing.B) {
	ds := datagen.Ionosphere(7)
	cond, err := core.Static(ds.X, 25, rng.New(4), core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cond.Synthesize(r); err != nil {
			b.Fatal(err)
		}
	}
}

// benchWorkerCounts are the sub-benchmark worker counts of the parallel
// micro-benchmarks: sequential, two workers, and the machine's default.
func benchWorkerCounts() []int {
	counts := []int{1, 2}
	if n := runtime.NumCPU(); n != 1 && n != 2 {
		counts = append(counts, n)
	}
	return counts
}

// BenchmarkCoreSynthesizeParallel sweeps the synthesis worker count on a
// large condensation; the output is bit-identical across sub-benchmarks
// (TestSynthesizeParallelEquivalence), only the wall clock moves.
func BenchmarkCoreSynthesizeParallel(b *testing.B) {
	ds := datagen.Abalone(7)
	cond, err := core.Static(ds.X, 25, rng.New(4), core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range benchWorkerCounts() {
		b.Run(strconv.Itoa(w), func(b *testing.B) {
			cond.SetParallelism(w)
			r := rng.New(5)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cond.Synthesize(r); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkKNNPredictAll sweeps the classifier's test-sweep worker count.
// ReportAllocs makes the scratch-counter fix visible: allocations stay
// flat per sweep instead of growing with the number of predictions.
func BenchmarkKNNPredictAll(b *testing.B) {
	ds := datagen.Pima(7)
	train, test, err := ds.TrainTestSplit(0.75, rng.New(8))
	if err != nil {
		b.Fatal(err)
	}
	clf, err := knn.NewClassifier(train, 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range benchWorkerCounts() {
		b.Run(strconv.Itoa(w), func(b *testing.B) {
			clf.SetParallelism(w)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := clf.PredictAll(test); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExperimentsAccuracyCurveParallel sweeps the experiment-cell
// worker count on the paper's Fig 7a workload — the headline number for
// the deterministic parallel evaluation engine.
func BenchmarkExperimentsAccuracyCurveParallel(b *testing.B) {
	ds := datagen.Pima(7)
	for _, w := range benchWorkerCounts() {
		b.Run(strconv.Itoa(w), func(b *testing.B) {
			cfg := benchConfig()
			cfg.Parallelism = w
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := experiments.AccuracyCurve(ds, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkCoreSplitGroup(b *testing.B) {
	r := rng.New(6)
	g := stats.NewGroup(34)
	x := make(mat.Vector, 34)
	for i := 0; i < 50; i++ {
		for j := range x {
			x[j] = r.Norm()
		}
		if err := g.Add(x); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.SplitGroup(g, 25, core.SplitPrincipal, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensionDecisionTree(b *testing.B) {
	ds := datagen.Pima(7)
	var table *experiments.Table
	for i := 0; i < b.N; i++ {
		var err error
		table, err = experiments.TreeStudy(ds, benchConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, table)
	reportLastRow(b, table)
}

func BenchmarkExtensionAssociationRules(b *testing.B) {
	ds := datagen.Ecoli(7)
	var table *experiments.Table
	for i := 0; i < b.N; i++ {
		var err error
		table, err = experiments.AssociationStudy(ds, 3, 0.2, 0.6, benchConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, table)
	reportLastRow(b, table)
}

func BenchmarkExtensionNaiveBayes(b *testing.B) {
	ds := datagen.Pima(7)
	var table *experiments.Table
	for i := 0; i < b.N; i++ {
		var err error
		table, err = experiments.NaiveBayesStudy(ds, benchConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, table)
	reportLastRow(b, table)
}

// BenchmarkScalingCondense isolates the condensation step at the scaling
// study's largest data-set size (n=2000; the figure-level
// BenchmarkScalingDatasetSize is dominated by the k-NN evaluation, which
// the neighbour-search backends do not touch).
func BenchmarkScalingCondense(b *testing.B) {
	ds := datagen.TwoGaussians(7, 1000, 6, 4)
	for _, search := range []core.NeighborSearch{
		core.SearchScanSort, core.SearchQuickselect, core.SearchKDTree,
	} {
		b.Run(search.String(), func(b *testing.B) {
			c, err := core.NewCondenser(20, core.WithSeed(1), core.WithNeighborSearch(search))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Static(ds.X); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkScalingDatasetSize(b *testing.B) {
	var table *experiments.Table
	for i := 0; i < b.N; i++ {
		var err error
		table, err = experiments.ScalingStudy(20, []int{100, 500, 2000}, benchConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, table)
	reportLastRow(b, table)
}

func BenchmarkFidelityMarginalKS(b *testing.B) {
	var table *experiments.Table
	for i := 0; i < b.N; i++ {
		var err error
		table, err = experiments.FidelityStudy("ionosphere", benchConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, table)
	reportLastRow(b, table)
}

func BenchmarkExtensionLinearRegression(b *testing.B) {
	ds := datagen.Abalone(7)
	var table *experiments.Table
	for i := 0; i < b.N; i++ {
		var err error
		table, err = experiments.LinRegStudy(ds, benchConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, table)
	reportLastRow(b, table)
}
