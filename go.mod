module condensation

go 1.22
