// Streaming-ingestion benchmarks: steady-state throughput of the dynamic
// engine's hot path (PR 4) at realistic group counts, through every layer
// that ingests — Dynamic.Add / Dynamic.AddBatch directly, the stream
// driver, and the HTTP server. Reference numbers live in BENCH_PR4.json.
package condensation

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"condensation/internal/core"
	"condensation/internal/mat"
	"condensation/internal/rng"
	"condensation/internal/server"
	"condensation/internal/stream"
	"condensation/internal/telemetry"
)

// benchStream draws an i.i.d. isotropic Gaussian record pool — the
// pruning-hostile worst case for any spatial index, since every direction
// carries equal variance.
func benchStream(seed uint64, n, dim int) []mat.Vector {
	r := rng.New(seed)
	out := make([]mat.Vector, n)
	for i := range out {
		x := make(mat.Vector, dim)
		for j := range x {
			x[j] = r.Norm()
		}
		out[i] = x
	}
	return out
}

// benchStreamCorr draws a correlated record pool: a rank-3 factor model
// x = Az + 0.1ε with z ∈ R³, so records live near a 3-dimensional
// subspace of R^dim. This is the regime the paper's condensation targets —
// its split step is eigenvector-based precisely because real attributes
// are correlated — and the regime where centroid-index pruning pays off.
func benchStreamCorr(seed uint64, n, dim int) []mat.Vector {
	const intrinsic = 3
	r := rng.New(seed)
	a := make([]float64, dim*intrinsic)
	for i := range a {
		a[i] = r.Norm()
	}
	out := make([]mat.Vector, n)
	for i := range out {
		var z [intrinsic]float64
		for j := range z {
			z[j] = r.Norm()
		}
		x := make(mat.Vector, dim)
		for j := range x {
			s := 0.1 * r.Norm()
			for l, zv := range z {
				s += a[j*intrinsic+l] * zv
			}
			x[j] = s
		}
		out[i] = x
	}
	return out
}

// benchBase builds a static condensation with ≈ groups groups of the
// given k over a prefix of pool, for seeding per-benchmark dynamic
// condensers.
func benchBase(b *testing.B, pool []mat.Vector, groups, k int) *core.Condensation {
	b.Helper()
	base, err := core.Static(pool[:groups*k], k, rng.New(12), core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return base
}

// benchFresh seeds a dynamic condenser from base with the given routing
// backend. Ingest benchmarks re-seed every benchResetEvery records (off
// the clock) so the group count — the variable that determines routing
// cost — stays pinned near the sub-benchmark's G instead of growing with
// b.N.
func benchFresh(b *testing.B, base *core.Condensation, search core.NeighborSearch) *core.Dynamic {
	b.Helper()
	dyn, err := core.NewDynamic(base, rng.New(13))
	if err != nil {
		b.Fatal(err)
	}
	if err := dyn.SetNeighborSearch(search); err != nil {
		b.Fatal(err)
	}
	return dyn
}

// benchResetEvery is the record budget between off-the-clock re-seeds: at
// k = 25 it bounds group growth to +164 groups over a measurement window.
const benchResetEvery = 4096

// BenchmarkDynamicAddAll measures steady-state per-record ingest cost at
// fixed group counts, for the linear-scan and centroid kd-index routers,
// through both the per-record Add loop and the speculative AddBatch engine
// (1024-record batches), over two stream shapes: isotropic i.i.d. noise
// (worst case for spatial pruning) and a correlated rank-3 factor stream
// (the attribute-correlated regime the paper targets). All cells of one
// stream × G produce bit-identical condensations (TestAddBatchEquivalence);
// only the clock and the allocation counters move. ns/op is per record in
// every cell.
func BenchmarkDynamicAddAll(b *testing.B) {
	const dim, k, batchSize = 8, 25, 1024
	const maxBase = 800 * k
	streams := []struct {
		name string
		gen  func(seed uint64, n, dim int) []mat.Vector
	}{{"iid", benchStream}, {"corr", benchStreamCorr}}
	for _, str := range streams {
		// One pool per stream shape: the static base comes from its prefix so
		// base groups and ingested records share one distribution (for the
		// correlated stream, the same factor matrix).
		full := str.gen(14, maxBase+1<<16, dim)
		pool := full[maxBase:]
		for _, G := range []int{200, 800} {
			base := benchBase(b, full, G, k)
			for _, search := range []core.NeighborSearch{core.SearchScanSort, core.SearchKDTree} {
				b.Run(fmt.Sprintf("%s/G=%d/%s/add", str.name, G, search), func(b *testing.B) {
					dyn := benchFresh(b, base, search)
					fed := 0
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if fed == benchResetEvery {
							b.StopTimer()
							dyn = benchFresh(b, base, search)
							fed = 0
							b.StartTimer()
						}
						if err := dyn.Add(pool[i%len(pool)]); err != nil {
							b.Fatal(err)
						}
						fed++
					}
				})
				b.Run(fmt.Sprintf("%s/G=%d/%s/batch", str.name, G, search), func(b *testing.B) {
					dyn := benchFresh(b, base, search)
					fed := 0
					b.ReportAllocs()
					b.ResetTimer()
					for done := 0; done < b.N; {
						if fed >= benchResetEvery {
							b.StopTimer()
							dyn = benchFresh(b, base, search)
							fed = 0
							b.StartTimer()
						}
						n := batchSize
						if b.N-done < n {
							n = b.N - done
						}
						lo := done % (len(pool) - batchSize)
						if err := dyn.AddBatch(pool[lo : lo+n]); err != nil {
							b.Fatal(err)
						}
						done += n
						fed += n
					}
				})
			}
		}
	}
}

// BenchmarkDynamicIngestF32 measures the opt-in Float32 index mode against
// the default float64 scan router on the same correlated stream and G:
// single-precision pruning with the safety margin plus float64
// re-verification, versus the pure double-precision sweep. Output is
// bit-identical between the two cells (TestFloat32RoutingEquivalence);
// only the index arithmetic differs.
func BenchmarkDynamicIngestF32(b *testing.B) {
	const dim, k, batchSize, G = 8, 25, 1024, 800
	full := benchStreamCorr(14, G*k+1<<16, dim)
	pool := full[G*k:]
	base := benchBase(b, full, G, k)
	for _, prec := range []core.IndexPrecision{core.Float64, core.Float32} {
		b.Run(fmt.Sprintf("corr/G=%d/scan/%s/batch", G, prec), func(b *testing.B) {
			fresh := func() *core.Dynamic {
				dyn := benchFresh(b, base, core.SearchScanSort)
				if err := dyn.SetIndexPrecision(prec); err != nil {
					b.Fatal(err)
				}
				return dyn
			}
			dyn := fresh()
			fed := 0
			b.ReportAllocs()
			b.ResetTimer()
			for done := 0; done < b.N; {
				if fed >= benchResetEvery {
					b.StopTimer()
					dyn = fresh()
					fed = 0
					b.StartTimer()
				}
				n := batchSize
				if b.N-done < n {
					n = b.N - done
				}
				lo := done % (len(pool) - batchSize)
				if err := dyn.AddBatch(pool[lo : lo+n]); err != nil {
					b.Fatal(err)
				}
				done += n
				fed += n
			}
		})
	}
}

// BenchmarkDynamicIngestJournal measures the lifecycle journal's ingest
// cost at pinned G on the per-record Add path: journal=off must stay at
// 0 allocs/record (the journal is one nil check), and journal=on pays
// only at group creations and splits — a few events per thousand records
// at steady state — so its per-record cost stays within a few percent of
// the off cell.
func BenchmarkDynamicIngestJournal(b *testing.B) {
	const dim, k, G = 8, 25, 800
	full := benchStreamCorr(14, G*k+1<<16, dim)
	pool := full[G*k:]
	base := benchBase(b, full, G, k)
	for _, journal := range []bool{false, true} {
		name := "journal=off"
		if journal {
			name = "journal=on"
		}
		b.Run(fmt.Sprintf("corr/G=%d/scan/%s/add", G, name), func(b *testing.B) {
			fresh := func() *core.Dynamic {
				dyn := benchFresh(b, base, core.SearchScanSort)
				if journal {
					dyn.SetJournal(telemetry.NewJournal(4096))
				}
				return dyn
			}
			dyn := fresh()
			fed := 0
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if fed == benchResetEvery {
					b.StopTimer()
					dyn = fresh()
					fed = 0
					b.StartTimer()
				}
				if err := dyn.Add(pool[i%len(pool)]); err != nil {
					b.Fatal(err)
				}
				fed++
			}
		})
	}
}

// BenchmarkStreamFeed measures the stream driver end to end — telemetry
// gauges, snapshot cadence, and the condenser underneath — per record, with
// per-record feeding versus the batched path, over the correlated stream at
// G = 800 (the steady-state regime the batch engine and centroid index
// target; SearchAuto promotes to the index here).
func BenchmarkStreamFeed(b *testing.B) {
	const dim, k, G = 8, 25, 800
	full := benchStreamCorr(14, G*k+1<<16, dim)
	pool := full[G*k:]
	for _, batch := range []int{0, 1024} {
		name := "record"
		if batch > 0 {
			name = fmt.Sprintf("batch=%d", batch)
		}
		b.Run(name, func(b *testing.B) {
			base := benchBase(b, full, G, k)
			fresh := func() *stream.Driver {
				d, err := stream.NewDriver(benchFresh(b, base, core.SearchAuto))
				if err != nil {
					b.Fatal(err)
				}
				d.BatchSize = batch
				return d
			}
			d := fresh()
			fed := 0
			b.ReportAllocs()
			b.ResetTimer()
			for done := 0; done < b.N; {
				if fed >= benchResetEvery {
					b.StopTimer()
					d = fresh()
					fed = 0
					b.StartTimer()
				}
				n := 1 << 10
				if b.N-done < n {
					n = b.N - done
				}
				lo := done % (len(pool) - 1<<10)
				if err := d.Feed(pool[lo : lo+n]); err != nil {
					b.Fatal(err)
				}
				done += n
				fed += n
			}
		})
	}
}

// BenchmarkServerIngest measures the full HTTP ingest path — JSON decode,
// validation, the write-locked AddBatch, and the JSON response — in
// records per op: each iteration POSTs one 1024-record pre-encoded body
// against a server resumed at G = 800 over the correlated stream, and
// ns/op is per record, comparable to the engine-level benchmarks above.
func BenchmarkServerIngest(b *testing.B) {
	const dim, k, batchSize = 8, 25, 1024
	const G = 800
	full := benchStreamCorr(14, G*k+1<<14, dim)
	base := benchBase(b, full, G, k)
	c, err := core.NewCondenser(k, core.WithSeed(16))
	if err != nil {
		b.Fatal(err)
	}
	fresh := func() *server.Server {
		s, err := server.New(server.Config{Dim: dim, Condenser: c, Initial: base})
		if err != nil {
			b.Fatal(err)
		}
		return s
	}
	s := fresh()
	pool := full[G*k:]
	var bodies [][]byte
	for lo := 0; lo+batchSize <= len(pool); lo += batchSize {
		rows := make([][]float64, batchSize)
		for i, x := range pool[lo : lo+batchSize] {
			rows[i] = []float64(x)
		}
		body, err := json.Marshal(map[string]interface{}{"records": rows})
		if err != nil {
			b.Fatal(err)
		}
		bodies = append(bodies, body)
	}
	fed := 0
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; done += batchSize {
		if fed >= benchResetEvery {
			b.StopTimer()
			s = fresh()
			fed = 0
			b.StartTimer()
		}
		req := httptest.NewRequest(http.MethodPost, "/v1/records",
			bytes.NewReader(bodies[(done/batchSize)%len(bodies)]))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("ingest status %d: %s", rec.Code, rec.Body.String())
		}
		fed += batchSize
	}
}

// BenchmarkServerIngestRecorded measures the observability tax on the HTTP
// ingest path: the same pinned-G batch POST loop as BenchmarkServerIngest,
// once with telemetry disabled, once with the full PR 8 stack enabled — a
// registry, a flight recorder scraping every millisecond on its own
// goroutine (hundreds of times more often than the production 10s default),
// and a watchdog evaluating the health rules after every scrape. Because
// scrapes never run inline on the request path, the "recorded" cell should
// sit within noise of "off": the only hot-path cost is the atomic counter
// and histogram updates the server already pays whenever a registry is
// attached.
func BenchmarkServerIngestRecorded(b *testing.B) {
	const dim, k, batchSize = 8, 25, 1024
	const G = 800
	full := benchStreamCorr(14, G*k+1<<14, dim)
	base := benchBase(b, full, G, k)
	c, err := core.NewCondenser(k, core.WithSeed(16))
	if err != nil {
		b.Fatal(err)
	}
	pool := full[G*k:]
	var bodies [][]byte
	for lo := 0; lo+batchSize <= len(pool); lo += batchSize {
		rows := make([][]float64, batchSize)
		for i, x := range pool[lo : lo+batchSize] {
			rows[i] = []float64(x)
		}
		body, err := json.Marshal(map[string]interface{}{"records": rows})
		if err != nil {
			b.Fatal(err)
		}
		bodies = append(bodies, body)
	}
	for _, recorded := range []bool{false, true} {
		name := "off"
		if recorded {
			name = "recorded"
		}
		b.Run(name, func(b *testing.B) {
			fresh := func() *server.Server {
				cfg := server.Config{Dim: dim, Condenser: c, Initial: base}
				if recorded {
					reg := telemetry.NewRegistry()
					rec := telemetry.NewRecorder(reg, 360)
					wd := telemetry.NewWatchdog(reg, nil, server.HealthRules(1)...)
					cfg.Telemetry, cfg.Recorder, cfg.Watchdog = reg, rec, wd
					ctx, cancel := context.WithCancel(context.Background())
					b.Cleanup(cancel)
					go rec.Run(ctx, time.Millisecond, func(telemetry.Window) {
						wd.Evaluate(rec)
					})
				}
				s, err := server.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				return s
			}
			s := fresh()
			fed := 0
			b.ReportAllocs()
			b.ResetTimer()
			for done := 0; done < b.N; done += batchSize {
				if fed >= benchResetEvery {
					b.StopTimer()
					s = fresh()
					fed = 0
					b.StartTimer()
				}
				req := httptest.NewRequest(http.MethodPost, "/v1/records",
					bytes.NewReader(bodies[(done/batchSize)%len(bodies)]))
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					b.Fatalf("ingest status %d: %s", rec.Code, rec.Body.String())
				}
				fed += batchSize
			}
		})
	}
}
