// Serving-tier read benchmarks (PR 9): the generation-versioned read
// path. Each benchmark drives one read endpoint against a server resumed
// at the pinned G = 800 correlated-stream base and reports two cells:
//
//   - hot:  repeated reads of unchanged state — the generation-keyed
//     caches serve stored bytes, so cost is response plumbing alone.
//   - cold: every read is preceded by an off-clock single-record POST
//     that moves the mutation generation, forcing the full rebuild
//     (group clones, synthesis/size-sweep/serialization, encoding).
//
// The hot/cold allocation gap is the tentpole claim: unchanged-state
// reads drop from O(G·d²) clones per request to near-zero. The harness
// reuses one request and one response writer so the cells measure the
// server, not httptest allocations. Reference numbers live in
// BENCH_PR9.json; CI guards the hot-cell allocs/op.
package condensation

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"condensation/internal/core"
	"condensation/internal/server"
)

// benchWriter is a reusable allocation-free http.ResponseWriter: the
// header map and body buffer persist across requests so per-iteration
// allocs/op reflect handler work only.
type benchWriter struct {
	header http.Header
	body   bytes.Buffer
	status int
}

func newBenchWriter() *benchWriter { return &benchWriter{header: make(http.Header)} }

func (w *benchWriter) Header() http.Header { return w.header }
func (w *benchWriter) WriteHeader(s int)   { w.status = s }
func (w *benchWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.body.Write(p)
}

func (w *benchWriter) reset() {
	w.status = 0
	w.body.Reset()
	for k := range w.header {
		delete(w.header, k)
	}
}

// get drives one request through the server via the reused writer,
// failing the benchmark unless the response status is want.
func (w *benchWriter) get(b *testing.B, s *server.Server, req *http.Request, want int) {
	w.reset()
	s.ServeHTTP(w, req)
	if w.status != want {
		b.Fatalf("GET %s status %d, want %d: %s", req.URL, w.status, want, w.body.String())
	}
}

// benchServerRead measures one read endpoint hot and cold at G = 800.
func benchServerRead(b *testing.B, path string) {
	const dim, k = 8, 25
	const G = 800
	full := benchStreamCorr(14, G*k+1<<14, dim)
	base := benchBase(b, full, G, k)
	c, err := core.NewCondenser(k, core.WithSeed(16))
	if err != nil {
		b.Fatal(err)
	}
	fresh := func() *server.Server {
		s, err := server.New(server.Config{Dim: dim, Condenser: c, Initial: base})
		if err != nil {
			b.Fatal(err)
		}
		return s
	}
	// Pre-encoded single-record POST bodies: the cold loop's off-clock
	// generation movers, drawn from the same correlated pool.
	pool := full[G*k:]
	bodies := make([][]byte, 512)
	for i := range bodies {
		body, err := json.Marshal(map[string]interface{}{
			"records": [][]float64{[]float64(pool[i%len(pool)])},
		})
		if err != nil {
			b.Fatal(err)
		}
		bodies[i] = body
	}

	b.Run("cold", func(b *testing.B) {
		s := fresh()
		w := newBenchWriter()
		req := httptest.NewRequest(http.MethodGet, path, nil)
		w.get(b, s, req, http.StatusOK) // size the body buffer off the clock
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			// Re-seed periodically so group count stays pinned near G
			// despite the per-iteration writes, as the ingest benches do.
			if i > 0 && i%benchResetEvery == 0 {
				s = fresh()
			}
			post := httptest.NewRequest(http.MethodPost, "/v1/records",
				bytes.NewReader(bodies[i%len(bodies)]))
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, post)
			if rec.Code != http.StatusOK {
				b.Fatalf("invalidating POST status %d: %s", rec.Code, rec.Body.String())
			}
			b.StartTimer()
			w.get(b, s, req, http.StatusOK)
		}
	})

	b.Run("hot", func(b *testing.B) {
		s := fresh()
		w := newBenchWriter()
		req := httptest.NewRequest(http.MethodGet, path, nil)
		w.get(b, s, req, http.StatusOK) // warm the generation caches off the clock
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.get(b, s, req, http.StatusOK)
		}
	})
}

// BenchmarkServerReadSnapshot measures GET /v1/snapshot: 20000 synthesized
// records, JSON-encoded (~3 MB per response). Hot replays the memoized
// (generation, seed) body; cold re-synthesizes and re-encodes everything.
func BenchmarkServerReadSnapshot(b *testing.B) { benchServerRead(b, "/v1/snapshot?seed=7") }

// BenchmarkServerReadStats measures GET /v1/stats: hot replays the encoded
// body; cold re-sweeps the per-group sizes (no cloning either way).
func BenchmarkServerReadStats(b *testing.B) { benchServerRead(b, "/v1/stats") }

// BenchmarkServerReadCheckpoint measures GET /v1/checkpoint: hot serves
// the cached encoded state under its generation ETag; cold re-clones all
// G groups and re-serializes. The extra hot304 cell is the conditional
// poller: If-None-Match matches, so the server answers with headers
// alone — the replica-refresh fast path.
func BenchmarkServerReadCheckpoint(b *testing.B) {
	benchServerRead(b, "/v1/checkpoint")

	const dim, k = 8, 25
	const G = 800
	full := benchStreamCorr(14, G*k+1<<10, dim)
	base := benchBase(b, full, G, k)
	c, err := core.NewCondenser(k, core.WithSeed(16))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("hot304", func(b *testing.B) {
		s, err := server.New(server.Config{Dim: dim, Condenser: c, Initial: base})
		if err != nil {
			b.Fatal(err)
		}
		w := newBenchWriter()
		w.get(b, s, httptest.NewRequest(http.MethodGet, "/v1/checkpoint", nil), http.StatusOK)
		etag := w.header.Get("ETag")
		if etag == "" {
			b.Fatal("checkpoint served no ETag")
		}
		req := httptest.NewRequest(http.MethodGet, "/v1/checkpoint", nil)
		req.Header.Set("If-None-Match", etag)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.get(b, s, req, http.StatusNotModified)
		}
	})
}
