package condensation

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"testing"

	"condensation/internal/core"
	"condensation/internal/rng"
)

// TestBitcheckFingerprint prints a fingerprint of the full default
// pipeline: static condensation, dynamic ingest through Add and AddBatch
// on both routing backends, and seeded synthesis. Run at two commits, the
// logged hashes must match byte for byte.
func TestBitcheckFingerprint(t *testing.T) {
	const dim, k, G = 8, 25, 300
	full := benchStreamCorr(14, G*k+10000, dim)
	base, err := core.Static(full[:G*k], k, rng.New(12), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	h := sha256.New()
	hashCond := func(c *core.Condensation) {
		for _, g := range c.Groups() {
			b, err := g.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			h.Write(b)
		}
		fmt.Fprintf(h, "|")
	}
	hashCond(base)

	pool := full[G*k:]
	for _, search := range []core.NeighborSearch{core.SearchScanSort, core.SearchKDTree} {
		dyn, err := core.NewDynamic(base, rng.New(13))
		if err != nil {
			t.Fatal(err)
		}
		if err := dyn.SetNeighborSearch(search); err != nil {
			t.Fatal(err)
		}
		for _, x := range pool[:2000] {
			if err := dyn.Add(x); err != nil {
				t.Fatal(err)
			}
		}
		for lo := 2000; lo+1024 <= len(pool); lo += 1024 {
			if err := dyn.AddBatch(pool[lo : lo+1024]); err != nil {
				t.Fatal(err)
			}
		}
		hashCond(dyn.Condensation())
	}

	groups, err := base.SynthesizeGrouped(rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	var buf [8]byte
	for _, pts := range groups {
		for _, x := range pts {
			for _, v := range x {
				binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
				h.Write(buf[:])
			}
		}
	}
	t.Logf("pipeline fingerprint: %x", h.Sum(nil))
}
