// Quickstart: condense a small data set into groups of k records,
// synthesize anonymized records from the retained group statistics, and
// show that the anonymized data preserves the mean and covariance
// structure while making individual records k-indistinguishable.
package main

import (
	"fmt"
	"log"

	"condensation/internal/core"
	"condensation/internal/mat"
	"condensation/internal/metrics"
	"condensation/internal/rng"
	"condensation/internal/stats"
)

func main() {
	// A toy data set: 200 records with strongly correlated attributes
	// (income ≈ 2×tenure + noise) — exactly the structure per-dimension
	// perturbation destroys and condensation keeps.
	r := rng.New(42)
	records := make([]mat.Vector, 200)
	for i := range records {
		tenure := r.Uniform(0, 30)
		income := 2*tenure + r.NormMeanStd(30, 3)
		records[i] = mat.Vector{tenure, income}
	}

	// Condense with indistinguishability level k = 20: every record
	// becomes statistically indistinguishable from at least 19 others.
	const k = 20
	condenser, err := core.NewCondenser(k, core.WithRandomSource(r.Split()))
	if err != nil {
		log.Fatal(err)
	}
	cond, err := condenser.Static(records)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("condensed %d records into %d groups (min size %d, avg %.1f)\n",
		cond.TotalCount(), cond.NumGroups(), cond.MinGroupSize(), cond.AverageGroupSize())

	// Regenerate anonymized records from the group statistics alone.
	anonymized, err := cond.Synthesize(r.Split())
	if err != nil {
		log.Fatal(err)
	}

	// The anonymized data is a drop-in replacement: compare moments.
	origMean, _ := stats.MeanVector(records)
	anonMean, _ := stats.MeanVector(anonymized)
	mu, err := metrics.CovarianceCompatibility(records, anonymized)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("original mean   [%.2f %.2f]\n", origMean[0], origMean[1])
	fmt.Printf("anonymized mean [%.2f %.2f]\n", anonMean[0], anonMean[1])
	fmt.Printf("covariance compatibility µ = %.4f (1.0 = identical structure)\n", mu)
}
