// Mining: two more unmodified data mining algorithms — a CART decision
// tree and Apriori association-rule mining — running directly on
// condensation-anonymized data. The paper's perturbation-based rival
// needed a bespoke algorithm redesign for each of these problems
// (classification in Agrawal–Srikant 2000, association rules in
// Evfimievski et al. 2002 and Rizvi–Haritsa 2002); with condensation the
// standard implementations consume the anonymized records as-is.
package main

import (
	"fmt"
	"log"

	"condensation/internal/assoc"
	"condensation/internal/core"
	"condensation/internal/datagen"
	"condensation/internal/dataset"
	"condensation/internal/discretize"
	"condensation/internal/rng"
	"condensation/internal/tree"
)

func main() {
	r := rng.New(31)
	ds := datagen.Pima(31)
	train, test, err := ds.TrainTestSplit(0.75, r.Split())
	if err != nil {
		log.Fatal(err)
	}
	condenser, err := core.NewCondenser(15, core.WithRandomSource(r.Split()))
	if err != nil {
		log.Fatal(err)
	}
	anon, _, err := condenser.Anonymize(train)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Decision tree — same code path for both training sets.
	for _, tc := range []struct {
		name string
		data *dataset.Dataset
	}{{"original", train}, {"anonymized k=15", anon}} {
		clf, err := tree.Train(tc.data, tree.Options{MaxDepth: 6, MinLeaf: 10})
		if err != nil {
			log.Fatal(err)
		}
		acc, err := clf.Accuracy(test)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("decision tree on %-16s accuracy %.4f (%d nodes, depth %d)\n",
			tc.name, acc, clf.Nodes(), clf.Depth())
	}

	// 2. Association rules — discretize, mine, compare rule sets.
	mine := func(data *dataset.Dataset) []assoc.Rule {
		dz, err := discretize.EquiDepth(data.X, 3)
		if err != nil {
			log.Fatal(err)
		}
		txs, err := dz.ItemsAll(data.X)
		if err != nil {
			log.Fatal(err)
		}
		freq, err := assoc.Apriori(txs, 0.15)
		if err != nil {
			log.Fatal(err)
		}
		rules, err := assoc.Rules(freq, 0.5)
		if err != nil {
			log.Fatal(err)
		}
		return rules
	}
	origRules := mine(train)
	anonRules := mine(anon)
	fmt.Printf("\nassociation rules: %d from original, %d from anonymized, Jaccard %.3f\n",
		len(origRules), len(anonRules), assoc.RuleSetJaccard(origRules, anonRules))
	show := len(origRules)
	if show > 3 {
		show = 3
	}
	for _, rule := range origRules[:show] {
		fmt.Printf("  top original rule: %v\n", rule)
	}
}
