// Streaming: the dynamic setting of Section 3 of the paper. An initial
// database is condensed statically; records then arrive one at a time and
// are folded into the nearest group's statistics, with groups splitting
// along their principal eigenvector whenever they reach 2k records. The
// example prints periodic snapshots showing the group population growing
// while every group stays within [k, 2k), then verifies the privacy
// guarantee with an audit.
package main

import (
	"fmt"
	"log"

	"condensation/internal/core"
	"condensation/internal/datagen"
	"condensation/internal/privacy"
	"condensation/internal/rng"
	"condensation/internal/stream"
)

func main() {
	const k = 25
	r := rng.New(11)

	// Synthetic Abalone stands in for a measurement stream; the first 500
	// records form the initial database, the rest arrive incrementally.
	ds := datagen.Abalone(11)
	initial := ds.X[:500]
	arriving := stream.Shuffled(ds.X[500:], r.Split())

	condenser, err := core.NewCondenser(k, core.WithRandomSource(r.Split()))
	if err != nil {
		log.Fatal(err)
	}
	base, err := condenser.Static(initial)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial database: %d records in %d groups\n", base.TotalCount(), base.NumGroups())

	dyn, err := condenser.DynamicFrom(base)
	if err != nil {
		log.Fatal(err)
	}
	driver, err := stream.NewDriver(dyn)
	if err != nil {
		log.Fatal(err)
	}
	driver.SnapshotEvery = 1000
	if err := driver.Feed(arriving); err != nil {
		log.Fatal(err)
	}

	for _, snap := range driver.Snapshots() {
		fmt.Printf("after %5d stream records: %4d groups, avg size %.1f\n",
			snap.Seen, snap.Groups, snap.AvgGroupSize)
	}

	// Audit the end state: every group must hold at least k records and
	// fewer than 2k (the split threshold).
	final := driver.Condensation()
	audit, err := privacy.AuditGroups(final.Groups(), k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final: %d groups over %d records, sizes in [%d, %d], k-anonymity satisfied: %v\n",
		audit.Groups, audit.Records, audit.MinSize, audit.MaxSize, audit.Satisfied())

	// The stream never stored a raw record beyond the statistics — yet we
	// can synthesize a full anonymized data set at any time.
	anonymized, err := final.Synthesize(r.Split())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthesized %d anonymized records from retained statistics only\n", len(anonymized))
}
