// Classification: the paper's headline experiment in miniature. A
// nearest-neighbour classifier — completely unmodified — is trained once
// on the original Pima-equivalent data and once on its condensation-
// anonymized counterpart, at several privacy levels, and both are scored
// on the same untouched test set. The anonymized accuracy tracks (and for
// some group sizes exceeds, via noise removal) the original accuracy.
package main

import (
	"fmt"
	"log"

	"condensation/internal/core"
	"condensation/internal/datagen"
	"condensation/internal/knn"
	"condensation/internal/metrics"
	"condensation/internal/rng"
)

func main() {
	r := rng.New(7)
	ds := datagen.Pima(7)
	train, test, err := ds.TrainTestSplit(0.75, r.Split())
	if err != nil {
		log.Fatal(err)
	}

	// Reference: 1-NN on the original training data.
	clf, err := knn.NewClassifier(train, 1)
	if err != nil {
		log.Fatal(err)
	}
	preds, err := clf.PredictAll(test)
	if err != nil {
		log.Fatal(err)
	}
	origAcc, _ := metrics.Accuracy(preds, test.Labels)
	fmt.Printf("%-28s accuracy %.4f\n", "original data", origAcc)

	// Anonymized at increasing privacy levels.
	for _, k := range []int{5, 15, 30, 50} {
		condenser, err := core.NewCondenser(k, core.WithRandomSource(r.Split()))
		if err != nil {
			log.Fatal(err)
		}
		anon, report, err := condenser.Anonymize(train)
		if err != nil {
			log.Fatal(err)
		}
		clf, err := knn.NewClassifier(anon, 1)
		if err != nil {
			log.Fatal(err)
		}
		preds, err := clf.PredictAll(test)
		if err != nil {
			log.Fatal(err)
		}
		acc, _ := metrics.Accuracy(preds, test.Labels)
		fmt.Printf("condensed k=%-3d (avg %.1f)   accuracy %.4f\n",
			k, report.AvgGroupSize(), acc)
	}
	fmt.Println("\nno classifier modification was needed — the anonymized data is a drop-in replacement")
}
