// Server: the condensation approach as a running data-collection service.
// The example starts the condensation HTTP server on a loopback port with a
// sharded engine (four independent condenser shards behind deterministic
// record routing), plays the roles of data contributors (posting batches of
// records) and of an analyst (fetching merged and per-shard privacy
// statistics and an anonymized snapshot), then checkpoints the server
// state — all over the same HTTP API that cmd/condenserd serves in
// production with -shards 4.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"condensation/internal/core"
	"condensation/internal/datagen"
	"condensation/internal/rng"
	"condensation/internal/server"
)

func main() {
	condenser, err := core.NewCondenser(20, core.WithSeed(5))
	if err != nil {
		log.Fatal(err)
	}
	srv, err := server.New(server.Config{Dim: 7, Condenser: condenser, Shards: 4})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := httpSrv.Serve(ln); err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	base := "http://" + ln.Addr().String()
	fmt.Printf("condensation server listening on %s\n", base)

	// Contributors: stream the Abalone-equivalent measurements in batches.
	ds := datagen.Abalone(5)
	const batch = 500
	for start := 0; start < 2000; start += batch {
		payload := map[string][][]float64{"records": {}}
		for _, x := range ds.X[start : start+batch] {
			payload["records"] = append(payload["records"], []float64(x))
		}
		body, err := json.Marshal(payload)
		if err != nil {
			log.Fatal(err)
		}
		resp, err := http.Post(base+"/v1/records", "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		var rr struct {
			Accepted int `json:"accepted"`
			Groups   int `json:"groups"`
			Splits   int `json:"splits"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		fmt.Printf("posted %d records → %d groups after %d splits\n", rr.Accepted, rr.Groups, rr.Splits)
	}

	// Analyst: check the privacy audit, then pull an anonymized snapshot.
	resp, err := http.Get(base + "/v1/stats?by_shard")
	if err != nil {
		log.Fatal(err)
	}
	var stats struct {
		Shards       int     `json:"shards"`
		Groups       int     `json:"groups"`
		Records      int     `json:"records"`
		MinGroupSize int     `json:"min_group_size"`
		MaxGroupSize int     `json:"max_group_size"`
		AvgGroupSize float64 `json:"avg_group_size"`
		KSatisfied   bool    `json:"k_satisfied"`
		ByShard      []struct {
			Shard      int  `json:"shard"`
			Groups     int  `json:"groups"`
			Records    int  `json:"records"`
			KSatisfied bool `json:"k_satisfied"`
		} `json:"by_shard"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("audit: %d records in %d groups over %d shards, sizes [%d, %d], k satisfied: %v\n",
		stats.Records, stats.Groups, stats.Shards, stats.MinGroupSize, stats.MaxGroupSize, stats.KSatisfied)
	for _, sh := range stats.ByShard {
		fmt.Printf("  shard %d: %d records in %d groups, k satisfied: %v\n",
			sh.Shard, sh.Records, sh.Groups, sh.KSatisfied)
	}

	resp, err = http.Get(base + "/v1/snapshot?seed=11")
	if err != nil {
		log.Fatal(err)
	}
	var snap struct {
		Records [][]float64 `json:"records"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("anonymized snapshot: %d records (first: %.3v)\n", len(snap.Records), snap.Records[0])

	// Operator: checkpoint the aggregate state (the only state there is).
	resp, err = http.Get(base + "/v1/checkpoint")
	if err != nil {
		log.Fatal(err)
	}
	cond, err := core.ReadCondensation(resp.Body)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint: %d groups, re-synthesizable offline (%d records)\n",
		cond.NumGroups(), cond.TotalCount())

	// The checkpoint alone regenerates anonymized data — no server needed.
	offline, err := cond.Synthesize(rng.New(99))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline synthesis from checkpoint: %d records\n", len(offline))

	if err := httpSrv.Close(); err != nil {
		log.Fatal(err)
	}
}
