// Clustering: the paper closes by noting that other data mining problems
// should also run unmodified on condensed data. This example clusters the
// Ecoli-equivalent data with k-means twice — once on the original records
// and once on condensation-anonymized records — and matches the resulting
// cluster centers. Small displacement means the anonymized data supports
// the same cluster structure.
package main

import (
	"fmt"
	"log"

	"condensation/internal/cluster"
	"condensation/internal/core"
	"condensation/internal/datagen"
	"condensation/internal/rng"
)

func main() {
	r := rng.New(23)
	ds := datagen.Ecoli(23)
	const clusters = 4

	origRes, err := cluster.KMeans(ds.X, clusters, r.Split(), cluster.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("original:   inertia %.2f after %d iterations\n", origRes.Inertia, origRes.Iterations)

	for _, k := range []int{5, 15, 30} {
		condenser, err := core.NewCondenser(k, core.WithRandomSource(r.Split()))
		if err != nil {
			log.Fatal(err)
		}
		anon, _, err := condenser.Anonymize(ds)
		if err != nil {
			log.Fatal(err)
		}
		anonRes, err := cluster.KMeans(anon.X, clusters, r.Split(), cluster.Options{})
		if err != nil {
			log.Fatal(err)
		}
		displacement, err := cluster.MatchCenters(origRes.Centers, anonRes.Centers)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("condensed k=%-3d: inertia %.2f, mean center displacement %.4f\n",
			k, anonRes.Inertia, displacement)
	}
	fmt.Println("\nk-means ran unmodified on the anonymized records")
}
